//! Colon-delimited spec grammars for catalogs, arrivals, durations and
//! sizes, used by `bshm gen`.

use bshm_core::machine::{Catalog, MachineType};
use bshm_workload::{ArrivalProcess, DurationLaw, SizeLaw};

fn parts(spec: &str) -> Vec<&str> {
    spec.split(':').collect()
}

fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{what}: cannot parse {s:?}"))
}

/// Parses a catalog spec:
///
/// * `dec:<m>:<base_g>` — DEC geometric family
/// * `inc:<m>:<base_g>` — INC geometric family
/// * `saw:<m>:<base_g>` — sawtooth (general) family
/// * `ec2-dec` / `ec2-inc` — the EC2-flavoured price lists
/// * `custom:g1xr1,g2xr2,…` — explicit `(capacity x rate)` list
pub fn parse_catalog(spec: &str) -> Result<Catalog, String> {
    let p = parts(spec);
    match p[0] {
        "dec" | "inc" | "saw" if p.len() == 3 => {
            let m: usize = num(p[1], "m")?;
            let g: u64 = num(p[2], "base capacity")?;
            if m == 0 || g == 0 {
                return Err("catalog: m and base capacity must be positive".into());
            }
            Ok(match p[0] {
                "dec" => bshm_workload::catalogs::dec_geometric(m, g),
                "inc" => bshm_workload::catalogs::inc_geometric(m, g),
                _ => {
                    if m < 2 {
                        return Err("sawtooth needs m >= 2".into());
                    }
                    bshm_workload::catalogs::sawtooth(m, g)
                }
            })
        }
        "ec2-dec" => Ok(bshm_workload::catalogs::ec2_like_dec()),
        "ec2-inc" => Ok(bshm_workload::catalogs::ec2_like_inc()),
        "custom" if p.len() == 2 => {
            let mut types = Vec::new();
            for item in p[1].split(',') {
                let (g, r) = item
                    .split_once('x')
                    .ok_or_else(|| format!("custom catalog: expected GxR, got {item:?}"))?;
                types.push(MachineType::new(num(g, "capacity")?, num(r, "rate")?));
            }
            Catalog::new(types).map_err(|e| format!("custom catalog: {e}"))
        }
        _ => Err(format!(
            "unknown catalog spec {spec:?} (try dec:4:4, inc:4:4, saw:4:4, ec2-dec, custom:4x1,16x2)"
        )),
    }
}

/// Parses an arrival spec: `poisson:<mean_gap>`, `diurnal:<base>:<peak>:<period>`,
/// `batch`, or `regular:<gap>`.
pub fn parse_arrivals(spec: &str) -> Result<ArrivalProcess, String> {
    let p = parts(spec);
    match (p[0], p.len()) {
        ("poisson", 2) => Ok(ArrivalProcess::Poisson {
            mean_gap: num(p[1], "mean gap")?,
        }),
        ("diurnal", 4) => Ok(ArrivalProcess::Diurnal {
            base: num(p[1], "base rate")?,
            peak: num(p[2], "peak rate")?,
            period: num(p[3], "period")?,
        }),
        ("batch", 1) => Ok(ArrivalProcess::Batch),
        ("regular", 2) => Ok(ArrivalProcess::Regular {
            gap: num(p[1], "gap")?,
        }),
        _ => Err(format!("unknown arrival spec {spec:?}")),
    }
}

/// Parses a duration spec: `uniform:<min>:<max>`, `pareto:<min>:<max>:<alpha>`,
/// `bimodal:<short>:<long>:<p_long>`, or `fixed:<d>`.
pub fn parse_durations(spec: &str) -> Result<DurationLaw, String> {
    let p = parts(spec);
    match (p[0], p.len()) {
        ("uniform", 3) => Ok(DurationLaw::Uniform {
            min: num(p[1], "min")?,
            max: num(p[2], "max")?,
        }),
        ("pareto", 4) => Ok(DurationLaw::BoundedPareto {
            min: num(p[1], "min")?,
            max: num(p[2], "max")?,
            alpha: num(p[3], "alpha")?,
        }),
        ("bimodal", 4) => Ok(DurationLaw::Bimodal {
            short: num(p[1], "short")?,
            long: num(p[2], "long")?,
            p_long: num(p[3], "p_long")?,
        }),
        ("fixed", 2) => Ok(DurationLaw::Fixed(num(p[1], "duration")?)),
        _ => Err(format!("unknown duration spec {spec:?}")),
    }
}

/// Parses a size spec: `uniform:<min>:<max>`, `pareto:<min>:<max>:<alpha>`,
/// or `discrete:s1xw1,s2xw2,…`.
pub fn parse_sizes(spec: &str) -> Result<SizeLaw, String> {
    let p = parts(spec);
    match (p[0], p.len()) {
        ("uniform", 3) => Ok(SizeLaw::Uniform {
            min: num(p[1], "min")?,
            max: num(p[2], "max")?,
        }),
        ("pareto", 4) => Ok(SizeLaw::HeavyTail {
            min: num(p[1], "min")?,
            max: num(p[2], "max")?,
            alpha: num(p[3], "alpha")?,
        }),
        ("discrete", 2) => {
            let mut items = Vec::new();
            for item in p[1].split(',') {
                let (s, w) = item
                    .split_once('x')
                    .ok_or_else(|| format!("discrete sizes: expected SxW, got {item:?}"))?;
                items.push((num::<u64>(s, "size")?, num::<f64>(w, "weight")?));
            }
            Ok(SizeLaw::Discrete(items))
        }
        _ => Err(format!("unknown size spec {spec:?}")),
    }
}

/// Parses an SLO spec for `bshm health`, delegating to the health plane's
/// own grammar (`window:W;gap:MILLI:N;storm:C;latency:MILLI:N;drops:C` —
/// see [`bshm_obs::SloSpec::parse`]).
pub fn parse_slo(spec: &str) -> Result<bshm_obs::SloSpec, String> {
    bshm_obs::SloSpec::parse(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bshm_core::machine::CatalogClass;

    #[test]
    fn catalog_specs() {
        assert_eq!(
            parse_catalog("dec:3:4").unwrap().classify(),
            CatalogClass::Dec
        );
        assert_eq!(
            parse_catalog("inc:3:4").unwrap().classify(),
            CatalogClass::Inc
        );
        assert_eq!(
            parse_catalog("saw:4:4").unwrap().classify(),
            CatalogClass::General
        );
        assert_eq!(parse_catalog("ec2-dec").unwrap().len(), 6);
        let c = parse_catalog("custom:4x1,16x2").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.types()[1].capacity, 16);
        assert!(parse_catalog("nope").is_err());
        assert!(parse_catalog("custom:4+1").is_err());
        assert!(parse_catalog("dec:0:4").is_err());
    }

    #[test]
    fn arrival_specs() {
        assert!(matches!(
            parse_arrivals("poisson:3.5").unwrap(),
            ArrivalProcess::Poisson { .. }
        ));
        assert!(matches!(
            parse_arrivals("batch").unwrap(),
            ArrivalProcess::Batch
        ));
        assert!(matches!(
            parse_arrivals("diurnal:0.1:1.0:500").unwrap(),
            ArrivalProcess::Diurnal { .. }
        ));
        assert!(matches!(
            parse_arrivals("regular:4").unwrap(),
            ArrivalProcess::Regular { gap: 4 }
        ));
        assert!(parse_arrivals("poisson").is_err());
    }

    #[test]
    fn duration_specs() {
        assert!(matches!(
            parse_durations("uniform:10:60").unwrap(),
            DurationLaw::Uniform { min: 10, max: 60 }
        ));
        assert!(matches!(
            parse_durations("bimodal:10:100:0.2").unwrap(),
            DurationLaw::Bimodal { .. }
        ));
        assert!(matches!(
            parse_durations("fixed:25").unwrap(),
            DurationLaw::Fixed(25)
        ));
        assert!(parse_durations("uniform:10").is_err());
    }

    #[test]
    fn slo_specs() {
        let spec = parse_slo(bshm_obs::DEFAULT_SLO_SPEC).unwrap();
        assert_eq!(spec.render(), bshm_obs::DEFAULT_SLO_SPEC);
        assert_eq!(parse_slo("window:8;storm:2").unwrap().width, 8);
        assert!(parse_slo("window:0").is_err());
        assert!(parse_slo("gap:high:2").is_err());
    }

    #[test]
    fn size_specs() {
        assert!(matches!(
            parse_sizes("pareto:1:64:1.3").unwrap(),
            SizeLaw::HeavyTail { .. }
        ));
        match parse_sizes("discrete:1x4,8x1").unwrap() {
            SizeLaw::Discrete(items) => assert_eq!(items, vec![(1, 4.0), (8, 1.0)]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_sizes("discrete:1-4").is_err());
    }
}
