//! Minimal `--flag value` argument parsing (no external crates).

use std::collections::HashMap;

/// Flags that take no value: `--metrics` is a switch, not `--metrics X`.
const BOOLEAN_FLAGS: &[&str] = &["gap", "metrics", "salvage"];

/// Parsed flags: `--key value` pairs plus positional arguments.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    named: HashMap<String, String>,
    positional: Vec<String>,
}

impl Flags {
    /// Parses `argv` (without the program/subcommand names). Every token
    /// starting with `--` consumes the next token as its value, except the
    /// known boolean switches (e.g. `--metrics`), which stand alone.
    pub fn parse(argv: &[String]) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    if flags.named.insert(key.to_string(), "true".into()).is_some() {
                        return Err(format!("flag --{key} given twice"));
                    }
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} expects a value"))?;
                if flags.named.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("flag --{key} given twice"));
                }
            } else {
                flags.positional.push(tok.clone());
            }
        }
        Ok(flags)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.named
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Optional string flag.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.named.get(key).map(String::as_str)
    }

    /// Whether a boolean switch (e.g. `--metrics`) was given.
    #[must_use]
    pub fn has(&self, key: &str) -> bool {
        self.named.contains_key(key)
    }

    /// Optional flag parsed to a type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.named.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse {v:?}")),
        }
    }

    /// Positional arguments.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let f = Flags::parse(&argv("--n 10 pos1 --seed 7 pos2")).unwrap();
        assert_eq!(f.require("n").unwrap(), "10");
        assert_eq!(f.get("seed"), Some("7"));
        assert_eq!(f.positional(), &["pos1", "pos2"]);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Flags::parse(&argv("--n")).is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(Flags::parse(&argv("--n 1 --n 2")).is_err());
    }

    #[test]
    fn get_or_parses_with_default() {
        let f = Flags::parse(&argv("--n 10")).unwrap();
        assert_eq!(f.get_or("n", 0usize).unwrap(), 10);
        assert_eq!(f.get_or("seed", 42u64).unwrap(), 42);
        assert!(f.get_or::<usize>("n", 0).is_ok());
        let bad = Flags::parse(&argv("--n abc")).unwrap();
        assert!(bad.get_or::<usize>("n", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let f = Flags::parse(&argv("")).unwrap();
        assert!(f.require("instance").unwrap_err().contains("--instance"));
    }

    #[test]
    fn boolean_switch_consumes_no_value() {
        let f = Flags::parse(&argv("--metrics --alg auto")).unwrap();
        assert!(f.has("metrics"));
        assert_eq!(f.get("alg"), Some("auto"));
        assert!(!f.has("trace"));
        // A trailing switch is fine.
        let f = Flags::parse(&argv("--alg auto --metrics")).unwrap();
        assert!(f.has("metrics"));
        assert!(Flags::parse(&argv("--metrics --metrics")).is_err());
        let f = Flags::parse(&argv("--salvage --trace t.jsonl")).unwrap();
        assert!(f.has("salvage"));
        assert_eq!(f.get("trace"), Some("t.jsonl"));
    }
}
