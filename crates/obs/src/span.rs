//! Process-global span timers for hot paths.
//!
//! Off by default: [`span`] returns a guard that does nothing until
//! [`set_enabled`]`(true)` is called (one relaxed atomic load on the
//! disabled path). When enabled, each guard measures wall-clock time from
//! construction to drop and folds it into a named aggregate; [`take`]
//! drains the aggregates, e.g. into a bench run's JSON report.
//!
//! The registry is global so deeply-buried call sites (the offline
//! solvers, the driver's `on_arrival` timing) need no plumbing; callers
//! that need isolation should [`take`] before and after the measured
//! region.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The workspace's single wall-clock source.
///
/// Every `Instant::now()` outside this module is a `wall-clock` lint
/// error (see `bshm-analyze`): routing timing through one chokepoint
/// keeps perf numbers attributable to a single clock and leaves a seam
/// for a mocked or virtual clock later.
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<BTreeMap<&'static str, SpanStat>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, SpanStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Aggregated timings for one span name.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStat {
    /// The span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// The single longest span, in nanoseconds.
    pub max_ns: u64,
}

/// Turns span timing on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span timing is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one completed span of `ns` nanoseconds under `name`.
/// No-op while timing is disabled.
pub fn record(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    // Span stats are plain counters: on a poisoned lock the partial
    // aggregates are still meaningful, so recover rather than panic.
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let stat = reg.entry(name).or_insert_with(|| SpanStat {
        name: name.to_string(),
        count: 0,
        total_ns: 0,
        max_ns: 0,
    });
    stat.count += 1;
    stat.total_ns = stat.total_ns.saturating_add(ns);
    stat.max_ns = stat.max_ns.max(ns);
}

/// Starts a span; timing stops when the returned guard drops.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

/// RAII timer from [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record(
                self.name,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
}

/// Drains all aggregates, sorted by total time descending.
#[must_use]
pub fn take() -> Vec<SpanStat> {
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut stats: Vec<SpanStat> = std::mem::take(&mut *reg).into_values().collect();
    stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: the registry and the
    // enabled flag are process-global, so separate #[test] fns would race.
    #[test]
    fn lifecycle() {
        // Disabled: nothing recorded.
        set_enabled(false);
        record("nope", 100);
        {
            let _g = span("nope");
        }
        assert!(take().is_empty());

        // Enabled: guards and direct records aggregate.
        set_enabled(true);
        record("alpha", 10);
        record("alpha", 30);
        record("beta", 5);
        {
            let _g = span("timed");
            std::hint::black_box(0);
        }
        let stats = take();
        set_enabled(false);
        assert!(take().is_empty(), "take drains");
        let alpha = stats.iter().find(|s| s.name == "alpha").unwrap();
        assert_eq!(alpha.count, 2);
        assert_eq!(alpha.total_ns, 40);
        assert_eq!(alpha.max_ns, 30);
        assert!(stats.iter().any(|s| s.name == "beta"));
        let timed = stats.iter().find(|s| s.name == "timed").unwrap();
        assert_eq!(timed.count, 1);
    }
}
