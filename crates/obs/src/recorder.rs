//! The [`Recorder`] probe: JSONL event log plus aggregated [`Metrics`].

use crate::event::{AlertReason, TraceEvent};
use crate::probe::Probe;
use bshm_core::ops::OpCounter;
use bshm_core::time::TimePoint;
use serde::Serialize;
use std::io::Write;

/// Number of buckets in the machine-utilization histogram (decile bins).
pub const UTILIZATION_BUCKETS: usize = 10;

/// Number of log₂ buckets in the decision-latency histogram: bucket `i`
/// counts decisions with `decision_ns` in `[2^i, 2^(i+1))` (bucket 0 also
/// holds 0 ns).
pub const DECISION_NS_BUCKETS: usize = 40;

/// The value range `[lo, hi)` covered by decision-latency bucket `i`.
#[must_use]
pub fn decision_ns_bucket_bounds(i: usize) -> (f64, f64) {
    let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
    (lo, (1u64 << (i + 1)) as f64)
}

/// Number of log₂ buckets in the per-decision operation-count histogram:
/// bucket `i` counts decisions whose scan work ([`OpCounter::total_ops`])
/// lies in `[2^i, 2^(i+1))` (bucket 0 also holds 0- and 1-op decisions).
pub const OPS_BUCKETS: usize = 40;

/// The value range `[lo, hi)` covered by operation-count bucket `i` (the
/// same log₂ layout as the latency buckets).
#[must_use]
pub fn ops_bucket_bounds(i: usize) -> (f64, f64) {
    decision_ns_bucket_bounds(i)
}

/// The value range `[lo, hi)` covered by utilization decile bucket `i`.
#[must_use]
pub fn utilization_bucket_bounds(i: usize) -> (f64, f64) {
    let w = 1.0 / UTILIZATION_BUCKETS as f64;
    (i as f64 * w, (i + 1) as f64 * w)
}

/// Estimates the `q`-quantile (`q` ∈ [0, 1]) of a bucketed histogram whose
/// bucket `i` covers the half-open value range `bounds(i)`.
///
/// The estimator is the standard bucket-interpolation one: the rank
/// `q·(n−1)` is located in the cumulative counts, then positioned linearly
/// inside its bucket's value range (samples are assumed uniform within a
/// bucket). Exact to bucket resolution; `None` for an empty histogram.
#[must_use]
pub fn bucket_quantile(
    counts: &[u64],
    bounds: impl Fn(usize) -> (f64, f64),
    q: f64,
) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * (total - 1) as f64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if rank < (cum + c) as f64 {
            let (lo, hi) = bounds(i);
            let frac = (rank - cum as f64) / c as f64;
            return Some(lo + frac * (hi - lo));
        }
        cum += c;
    }
    // rank == total-1 lands past the loop only through float edge cases;
    // answer with the top of the last non-empty bucket.
    let last = counts.iter().rposition(|&c| c > 0)?;
    Some(bounds(last).1)
}

/// Adds `src` into `dst` element-wise, growing `dst` if `src` is wider.
pub fn merge_counts(dst: &mut Vec<u64>, src: &[u64]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = d.saturating_add(s);
    }
}

/// Sums two open-machine gauge timelines as step functions: the result has
/// a point at every transition time of either input, holding the per-type
/// sum of both gauges at that instant (each gauge holds its last value
/// between its own transitions, and zero before its first).
#[must_use]
pub fn merge_gauge_timelines(a: &[GaugePoint], b: &[GaugePoint]) -> Vec<GaugePoint> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let types = a.iter().chain(b).map(|p| p.busy.len()).max().unwrap_or(0);
    let value_at = |points: &[GaugePoint], t: TimePoint| -> Vec<u32> {
        match points.partition_point(|p| p.t <= t) {
            0 => vec![0; types],
            i => {
                let mut v = points[i - 1].busy.clone();
                v.resize(types, 0);
                v
            }
        }
    };
    let mut grid: Vec<TimePoint> = a.iter().chain(b).map(|p| p.t).collect();
    grid.sort_unstable();
    grid.dedup();
    grid.into_iter()
        .map(|t| {
            let busy: Vec<u32> = value_at(a, t)
                .iter()
                .zip(&value_at(b, t))
                .map(|(&x, &y)| x + y)
                .collect();
            GaugePoint { t, busy }
        })
        .collect()
}

/// One step of the per-type open-machine gauge: the busy-machine counts
/// after an open or close at time `t`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct GaugePoint {
    /// Time of the transition.
    pub t: TimePoint,
    /// Busy machines of each catalog type, after the transition.
    pub busy: Vec<u32>,
}

/// Aggregated run metrics, folded from the event stream.
#[derive(Clone, Debug, Serialize)]
pub struct Metrics {
    /// The algorithm the metrics describe.
    pub algorithm: String,
    /// Number of `Arrival` events.
    pub arrivals: u64,
    /// Number of `Departure` events.
    pub departures: u64,
    /// Number of `Placement` events.
    pub placements: u64,
    /// Placements that created a new machine.
    pub opened_placements: u64,
    /// Placements onto an already-existing machine.
    pub reused_placements: u64,
    /// Number of `MachineOpen` events (idle → busy transitions).
    pub opens: u64,
    /// Number of `MachineClose` events (busy → idle transitions).
    pub closes: u64,
    /// Total cost accrued over all closed busy spans (`Σ rate × busy`).
    pub traced_cost: u64,
    /// Accrued cost per catalog type.
    pub cost_by_type: Vec<u64>,
    /// Peak simultaneously-busy machines per catalog type.
    pub open_peak_by_type: Vec<u32>,
    /// Per-type open-machine gauge: one point per open/close transition.
    pub gauge_timeline: Vec<GaugePoint>,
    /// Decile histogram of machine fill (`load / capacity`) right after
    /// each placement.
    pub utilization_hist: Vec<u64>,
    /// Sum of the observed fill fractions (the histogram's exact `_sum`).
    pub utilization_sum: f64,
    /// Log₂-bucketed histogram of placement decision latency in ns.
    pub decision_ns_hist: Vec<u64>,
    /// Sum of the observed decision latencies in ns (the exact `_sum`).
    pub decision_ns_sum: u64,
    /// Number of `MachineCrash` events (machines revoked by a fault plan).
    pub crashes: u64,
    /// Jobs displaced by crashes (sum of per-crash `displaced` counts).
    pub displaced_jobs: u64,
    /// Displaced jobs successfully re-placed (`JobRecovery` events).
    pub recovered_jobs: u64,
    /// Jobs explicitly dropped with a reason (`JobDropped` events).
    pub dropped_jobs: u64,
    /// Sum of recovery re-placement latencies in ns.
    pub recovery_ns_sum: u64,
    /// Number of `GapSample` gauge events observed.
    pub gap_samples: u64,
    /// Lower bound carried by the last `GapSample` (0 before the first).
    pub last_lower_bound: u64,
    /// Accrued cost carried by the last `GapSample` (0 before the first).
    pub last_attributed_cost: u64,
    /// Largest `cost / lower_bound` ratio over all `GapSample` events with
    /// a positive lower bound (0 before the first such sample).
    pub max_gap_ratio: f64,
    /// Deterministic operation counters folded from `Decision` events
    /// (all-zero for runs traced without the decision x-ray).
    pub ops: OpCounter,
    /// Log₂-bucketed histogram of per-decision scan work
    /// ([`OpCounter::total_ops`] per `Decision` event).
    pub ops_hist: Vec<u64>,
    /// Sum of per-decision scan work (the histogram's exact `_sum`).
    pub ops_sum: u64,
    /// Number of `Alert` events (SLO breaches) observed.
    pub alerts: u64,
    /// Alerts per typed reason, indexed by [`AlertReason::index`].
    pub alerts_by_reason: Vec<u64>,
    /// Number of `TenantLifecycle` events (resident-service supervision).
    pub tenant_transitions: u64,
    /// Number of `Degradation` events (ladder rung changes).
    pub degradations: u64,
}

impl Metrics {
    /// Fresh zeroed metrics for an algorithm over `n_types` catalog types.
    #[must_use]
    pub fn new(algorithm: impl Into<String>, n_types: usize) -> Self {
        Metrics {
            algorithm: algorithm.into(),
            arrivals: 0,
            departures: 0,
            placements: 0,
            opened_placements: 0,
            reused_placements: 0,
            opens: 0,
            closes: 0,
            traced_cost: 0,
            cost_by_type: vec![0; n_types],
            open_peak_by_type: vec![0; n_types],
            gauge_timeline: Vec::new(),
            utilization_hist: vec![0; UTILIZATION_BUCKETS],
            utilization_sum: 0.0,
            decision_ns_hist: vec![0; DECISION_NS_BUCKETS],
            decision_ns_sum: 0,
            crashes: 0,
            displaced_jobs: 0,
            recovered_jobs: 0,
            dropped_jobs: 0,
            recovery_ns_sum: 0,
            gap_samples: 0,
            last_lower_bound: 0,
            last_attributed_cost: 0,
            max_gap_ratio: 0.0,
            ops: OpCounter::default(),
            ops_hist: vec![0; OPS_BUCKETS],
            ops_sum: 0,
            alerts: 0,
            alerts_by_reason: vec![0; AlertReason::ALL.len()],
            tenant_transitions: 0,
            degradations: 0,
        }
    }

    /// The gap ratio at the last `GapSample`: `cost / lower_bound`, or
    /// `None` before the first sample with a positive lower bound.
    #[must_use]
    pub fn gap_ratio(&self) -> Option<f64> {
        (self.gap_samples > 0 && self.last_lower_bound > 0)
            .then(|| self.last_attributed_cost as f64 / self.last_lower_bound as f64)
    }

    /// Estimated `q`-quantile of the placement decision latency in ns;
    /// `None` before the first placement.
    #[must_use]
    pub fn decision_ns_quantile(&self, q: f64) -> Option<f64> {
        bucket_quantile(&self.decision_ns_hist, decision_ns_bucket_bounds, q)
    }

    /// Estimated `q`-quantile of machine fill at placement time;
    /// `None` before the first placement.
    #[must_use]
    pub fn utilization_quantile(&self, q: f64) -> Option<f64> {
        bucket_quantile(&self.utilization_hist, utilization_bucket_bounds, q)
    }

    /// Estimated `q`-quantile of per-decision scan work; `None` before
    /// the first `Decision` event.
    #[must_use]
    pub fn ops_per_decision_quantile(&self, q: f64) -> Option<f64> {
        bucket_quantile(&self.ops_hist, ops_bucket_bounds, q)
    }

    /// Folds another run's metrics into this one: counters, costs, sums and
    /// histograms add; per-type peaks take the max; the gauge timelines are
    /// summed as step functions over the union of their transition times
    /// (the merged gauge reads "busy machines across both runs").
    pub fn merge(&mut self, other: &Metrics) {
        self.arrivals += other.arrivals;
        self.departures += other.departures;
        self.placements += other.placements;
        self.opened_placements += other.opened_placements;
        self.reused_placements += other.reused_placements;
        self.opens += other.opens;
        self.closes += other.closes;
        self.traced_cost = self.traced_cost.saturating_add(other.traced_cost);
        merge_counts(&mut self.cost_by_type, &other.cost_by_type);
        if other.open_peak_by_type.len() > self.open_peak_by_type.len() {
            self.open_peak_by_type
                .resize(other.open_peak_by_type.len(), 0);
        }
        for (p, &o) in self
            .open_peak_by_type
            .iter_mut()
            .zip(&other.open_peak_by_type)
        {
            *p = (*p).max(o);
        }
        self.gauge_timeline = merge_gauge_timelines(&self.gauge_timeline, &other.gauge_timeline);
        merge_counts(&mut self.utilization_hist, &other.utilization_hist);
        self.utilization_sum += other.utilization_sum;
        merge_counts(&mut self.decision_ns_hist, &other.decision_ns_hist);
        self.decision_ns_sum = self.decision_ns_sum.saturating_add(other.decision_ns_sum);
        self.crashes += other.crashes;
        self.displaced_jobs += other.displaced_jobs;
        self.recovered_jobs += other.recovered_jobs;
        self.dropped_jobs += other.dropped_jobs;
        self.recovery_ns_sum = self.recovery_ns_sum.saturating_add(other.recovery_ns_sum);
        self.gap_samples += other.gap_samples;
        // The merged "last" gauge reads the later contributor's sample.
        if other.gap_samples > 0 {
            self.last_lower_bound = other.last_lower_bound;
            self.last_attributed_cost = other.last_attributed_cost;
        }
        if other.max_gap_ratio > self.max_gap_ratio {
            self.max_gap_ratio = other.max_gap_ratio;
        }
        self.ops.fold(&other.ops);
        merge_counts(&mut self.ops_hist, &other.ops_hist);
        self.ops_sum = self.ops_sum.saturating_add(other.ops_sum);
        self.alerts += other.alerts;
        merge_counts(&mut self.alerts_by_reason, &other.alerts_by_reason);
        self.tenant_transitions += other.tenant_transitions;
        self.degradations += other.degradations;
    }

    /// Folds one event into the aggregates. `busy_now` is the caller's
    /// running per-type busy-machine gauge (updated in place).
    pub fn update(&mut self, event: &TraceEvent, busy_now: &mut [u32]) {
        match *event {
            TraceEvent::Arrival { .. } => self.arrivals += 1,
            TraceEvent::Departure { .. } => self.departures += 1,
            TraceEvent::Placement {
                opened,
                decision_ns,
                load,
                capacity,
                ..
            } => {
                self.placements += 1;
                if opened {
                    self.opened_placements += 1;
                } else {
                    self.reused_placements += 1;
                }
                let fill = if capacity == 0 {
                    0.0
                } else {
                    load as f64 / capacity as f64
                };
                let bucket = ((fill * UTILIZATION_BUCKETS as f64) as usize) // bshm-allow(lossy-cast): float-to-usize saturates; min() bounds the bucket
                    .min(UTILIZATION_BUCKETS - 1);
                self.utilization_hist[bucket] += 1;
                self.utilization_sum += fill;
                let b = if decision_ns == 0 {
                    0
                } else {
                    (decision_ns.ilog2() as usize).min(DECISION_NS_BUCKETS - 1) // bshm-allow(lossy-cast): ilog2 of a u64 is at most 63
                };
                self.decision_ns_hist[b] += 1;
                self.decision_ns_sum = self.decision_ns_sum.saturating_add(decision_ns);
            }
            TraceEvent::CostAccrual {
                machine_type,
                busy,
                rate,
                ..
            } => {
                let cost = rate.saturating_mul(busy);
                self.traced_cost = self.traced_cost.saturating_add(cost);
                if let Some(c) = self.cost_by_type.get_mut(machine_type.0) {
                    *c = c.saturating_add(cost);
                }
            }
            TraceEvent::MachineOpen {
                t, machine_type, ..
            } => {
                self.opens += 1;
                if let Some(b) = busy_now.get_mut(machine_type.0) {
                    *b += 1;
                }
                if let Some(p) = self.open_peak_by_type.get_mut(machine_type.0) {
                    *p = (*p).max(busy_now[machine_type.0]);
                }
                self.push_gauge(t, busy_now);
            }
            TraceEvent::MachineClose {
                t, machine_type, ..
            } => {
                self.closes += 1;
                if let Some(b) = busy_now.get_mut(machine_type.0) {
                    *b = b.saturating_sub(1);
                }
                self.push_gauge(t, busy_now);
            }
            // The crash's busy span was already closed by its CostAccrual +
            // MachineClose pair, so the gauge does not move here.
            TraceEvent::MachineCrash { displaced, .. } => {
                self.crashes += 1;
                self.displaced_jobs += displaced;
            }
            TraceEvent::JobRecovery { recovery_ns, .. } => {
                self.recovered_jobs += 1;
                self.recovery_ns_sum = self.recovery_ns_sum.saturating_add(recovery_ns);
            }
            TraceEvent::JobDropped { .. } => self.dropped_jobs += 1,
            TraceEvent::Decision { ref ops, .. } => {
                self.ops.fold(ops);
                let work = ops.total_ops();
                let b = if work == 0 {
                    0
                } else {
                    (work.ilog2() as usize).min(OPS_BUCKETS - 1) // bshm-allow(lossy-cast): ilog2 of a u64 is at most 63
                };
                self.ops_hist[b] += 1;
                self.ops_sum = self.ops_sum.saturating_add(work);
            }
            TraceEvent::GapSample {
                lower_bound, cost, ..
            } => {
                self.gap_samples += 1;
                self.last_lower_bound = lower_bound;
                self.last_attributed_cost = cost;
                if lower_bound > 0 {
                    let ratio = cost as f64 / lower_bound as f64;
                    if ratio > self.max_gap_ratio {
                        self.max_gap_ratio = ratio;
                    }
                }
            }
            TraceEvent::Alert { reason, .. } => {
                self.alerts += 1;
                if let Some(c) = self.alerts_by_reason.get_mut(reason.index()) {
                    *c += 1;
                }
            }
            TraceEvent::TenantLifecycle { .. } => self.tenant_transitions += 1,
            TraceEvent::Degradation { .. } => self.degradations += 1,
        }
    }

    fn push_gauge(&mut self, t: TimePoint, busy_now: &[u32]) {
        // Coalesce transitions at the same instant into one point.
        if let Some(last) = self.gauge_timeline.last_mut() {
            if last.t == t {
                last.busy.clear();
                last.busy.extend_from_slice(busy_now);
                return;
            }
        }
        self.gauge_timeline.push(GaugePoint {
            t,
            busy: busy_now.to_vec(),
        });
    }

    /// A short human-readable summary block.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "trace metrics ({}):", self.algorithm);
        let _ = writeln!(
            out,
            "  events:      {} arrivals, {} departures, {} placements",
            self.arrivals, self.departures, self.placements
        );
        let _ = writeln!(
            out,
            "  machines:    {} opens, {} closes, peak by type {:?}",
            self.opens, self.closes, self.open_peak_by_type
        );
        let _ = writeln!(
            out,
            "  placements:  {} opened a machine, {} reused one",
            self.opened_placements, self.reused_placements
        );
        let _ = writeln!(
            out,
            "  cost:        {} traced ({:?} by type)",
            self.traced_cost, self.cost_by_type
        );
        if let Some(r) = self.gap_ratio() {
            let _ = writeln!(
                out,
                "  gap:         {:.4} (cost {} vs lower bound {}, max {:.4}, {} samples)",
                r,
                self.last_attributed_cost,
                self.last_lower_bound,
                self.max_gap_ratio,
                self.gap_samples
            );
        }
        if self.ops.decisions > 0 {
            let _ = writeln!(
                out,
                "  ops:         {} scanned + {} compared over {} decisions ({} opened, {} reused)",
                self.ops.machines_scanned,
                self.ops.capacity_comparisons,
                self.ops.decisions,
                self.ops.machines_opened,
                self.ops.machines_reused
            );
        }
        if self.crashes > 0 || self.dropped_jobs > 0 {
            let _ = writeln!(
                out,
                "  faults:      {} crashes, {} displaced, {} recovered, {} dropped",
                self.crashes, self.displaced_jobs, self.recovered_jobs, self.dropped_jobs
            );
        }
        if self.alerts > 0 {
            let by_reason: Vec<String> = AlertReason::ALL
                .iter()
                .zip(&self.alerts_by_reason)
                .filter(|(_, &c)| c > 0)
                .map(|(r, c)| format!("{} {}", c, r.as_str()))
                .collect();
            let _ = writeln!(
                out,
                "  alerts:      {} SLO breaches ({})",
                self.alerts,
                by_reason.join(", ")
            );
        }
        out
    }
}

/// Where a [`Recorder`] streams its JSONL event lines.
enum Sink {
    /// A caller-supplied writer (tests, pipes); flushed on finish.
    Raw(Box<dyn Write>),
    /// A crash-safe file: `<path>.partial` renamed into place on finish.
    File(crate::sink::TraceWriter),
}

impl Sink {
    fn writer(&mut self) -> &mut dyn Write {
        match self {
            Sink::Raw(w) => w.as_mut(),
            Sink::File(w) => w,
        }
    }
}

/// A probe that streams events to an optional JSONL writer and folds them
/// into [`Metrics`] as they pass.
pub struct Recorder {
    sink: Option<Sink>,
    metrics: Metrics,
    busy_now: Vec<u32>,
    events_written: u64,
    io_error: Option<String>,
}

impl Recorder {
    /// A recorder that only aggregates metrics (no event log).
    #[must_use]
    pub fn new(algorithm: impl Into<String>, n_types: usize) -> Self {
        Recorder {
            sink: None,
            metrics: Metrics::new(algorithm, n_types),
            busy_now: vec![0; n_types],
            events_written: 0,
            io_error: None,
        }
    }

    /// Adds a JSONL sink for the raw event stream.
    #[must_use]
    pub fn with_writer(mut self, writer: Box<dyn Write>) -> Self {
        self.sink = Some(Sink::Raw(writer));
        self
    }

    /// Adds a crash-safe file sink at `path` for the raw event stream:
    /// events stream to `<path>.partial`, renamed to `path` when the run
    /// finishes, so `path` never holds a torn trace (see [`crate::sink`]).
    pub fn with_file(self, path: &str) -> std::io::Result<Self> {
        self.with_file_opts(path, false)
    }

    /// [`Recorder::with_file`] with flush-per-event control: when
    /// `flush_each` is set every event line reaches the OS immediately, so
    /// a killed process loses at most the line in flight (at a syscall per
    /// event).
    pub fn with_file_opts(mut self, path: &str, flush_each: bool) -> std::io::Result<Self> {
        let w = crate::sink::TraceWriter::create(path)
            .map_err(std::io::Error::other)?
            .flush_each(flush_each);
        self.sink = Some(Sink::File(w));
        Ok(self)
    }

    /// The metrics aggregated so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the recorder, flushing the sink, and returns the metrics.
    ///
    /// # Errors
    /// Returns the first I/O error hit while writing or flushing events.
    pub fn into_metrics(mut self) -> Result<Metrics, String> {
        self.finish();
        match self.io_error.take() {
            Some(e) => Err(e),
            None => Ok(self.metrics),
        }
    }

    /// Number of events written to the sink so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.events_written
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("algorithm", &self.metrics.algorithm)
            .field("events_written", &self.events_written)
            .field("has_writer", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl Probe for Recorder {
    fn record(&mut self, event: &TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            // Serialization failure is reported through the same channel as
            // IO failure instead of panicking mid-run.
            match serde_json::to_string(event) {
                Ok(line) => {
                    if let Err(e) = writeln!(sink.writer(), "{line}") {
                        self.io_error
                            .get_or_insert_with(|| format!("writing trace: {e}"));
                    } else {
                        self.events_written += 1;
                    }
                }
                Err(e) => {
                    self.io_error
                        .get_or_insert_with(|| format!("serializing trace event: {e}"));
                }
            }
        }
        self.metrics.update(event, &mut self.busy_now);
    }

    fn finish(&mut self) {
        match self.sink.as_mut() {
            Some(Sink::Raw(w)) => {
                if let Err(e) = w.flush() {
                    self.io_error
                        .get_or_insert_with(|| format!("flushing trace: {e}"));
                }
            }
            // Finalize renames `.partial` into place; idempotent, so a
            // second finish() is safe.
            Some(Sink::File(w)) => {
                if let Err(e) = w.finalize() {
                    self.io_error.get_or_insert(e);
                }
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bshm_core::job::JobId;
    use bshm_core::machine::TypeIndex;
    use bshm_core::schedule::MachineId;

    fn feed(rec: &mut Recorder) {
        rec.on_arrival(0, JobId(0), 2);
        rec.on_machine_open(0, MachineId(0), TypeIndex(0));
        rec.on_placement(0, JobId(0), MachineId(0), TypeIndex(0), true, 100, 2, 4);
        rec.on_arrival(1, JobId(1), 2);
        rec.on_placement(1, JobId(1), MachineId(0), TypeIndex(0), false, 7, 4, 4);
        rec.on_departure(5, JobId(0), MachineId(0));
        rec.on_departure(9, JobId(1), MachineId(0));
        rec.on_cost_accrual(9, MachineId(0), TypeIndex(0), 9, 2);
        rec.on_machine_close(9, MachineId(0), TypeIndex(0), 0);
    }

    #[test]
    fn metrics_aggregate() {
        let mut rec = Recorder::new("test", 1);
        feed(&mut rec);
        let m = rec.into_metrics().unwrap();
        assert_eq!(m.arrivals, 2);
        assert_eq!(m.departures, 2);
        assert_eq!(m.placements, 2);
        assert_eq!(m.opened_placements, 1);
        assert_eq!(m.reused_placements, 1);
        assert_eq!(m.opens, 1);
        assert_eq!(m.closes, 1);
        assert_eq!(m.traced_cost, 18);
        assert_eq!(m.cost_by_type, vec![18]);
        assert_eq!(m.open_peak_by_type, vec![1]);
        // Gauge: up to 1 at t=0, back to 0 at t=9.
        assert_eq!(m.gauge_timeline.len(), 2);
        assert_eq!(
            m.gauge_timeline[0],
            GaugePoint {
                t: 0,
                busy: vec![1]
            }
        );
        assert_eq!(
            m.gauge_timeline[1],
            GaugePoint {
                t: 9,
                busy: vec![0]
            }
        );
        // Fill 2/4 → bucket 5; fill 4/4 → clamped to bucket 9.
        assert_eq!(m.utilization_hist[5], 1);
        assert_eq!(m.utilization_hist[9], 1);
        assert_eq!(m.utilization_hist.iter().sum::<u64>(), 2);
        // 100 ns → bucket 6 (2^6=64 ≤ 100 < 128); 7 ns → bucket 2.
        assert_eq!(m.decision_ns_hist[6], 1);
        assert_eq!(m.decision_ns_hist[2], 1);
    }

    #[test]
    fn writer_gets_jsonl() {
        let buf: Vec<u8> = Vec::new();
        let mut rec = Recorder::new("test", 1).with_writer(Box::new(buf));
        feed(&mut rec);
        assert_eq!(rec.events_written(), 9);
        // The sink is owned by the recorder; exercise the flush path.
        assert!(rec.into_metrics().is_ok());
    }

    #[test]
    fn fault_events_aggregate() {
        let mut rec = Recorder::new("faulted", 1);
        rec.on_machine_crash(4, MachineId(0), TypeIndex(0), 2);
        rec.on_job_recovery(4, JobId(0), MachineId(0), MachineId(1), TypeIndex(0), 50);
        rec.on_job_dropped(4, JobId(1), "no capacity");
        let s = rec.metrics().summary();
        assert!(s.contains("1 crashes, 2 displaced, 1 recovered, 1 dropped"));
        let mut m = rec.into_metrics().unwrap();
        assert_eq!(m.crashes, 1);
        assert_eq!(m.displaced_jobs, 2);
        assert_eq!(m.recovered_jobs, 1);
        assert_eq!(m.dropped_jobs, 1);
        assert_eq!(m.recovery_ns_sum, 50);
        let other = m.clone();
        m.merge(&other);
        assert_eq!(m.crashes, 2);
        assert_eq!(m.displaced_jobs, 4);
        assert_eq!(m.recovery_ns_sum, 100);
    }

    #[test]
    fn file_sink_is_crash_safe() {
        let dir = std::env::temp_dir().join("bshm-recorder-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut rec = Recorder::new("test", 1)
            .with_file_opts(path.to_str().unwrap(), true)
            .unwrap();
        feed(&mut rec);
        // Mid-run, only the .partial file exists (flush-per-event keeps it
        // current); the final path appears atomically at finish.
        assert!(!path.exists());
        assert!(crate::sink::partial_path(&path).exists());
        assert!(rec.into_metrics().is_ok());
        assert!(path.exists());
        assert!(!crate::sink::partial_path(&path).exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::replay::parse_jsonl(&text).unwrap().len(), 9);
    }

    #[test]
    fn quantile_empty_is_none() {
        let m = Metrics::new("t", 1);
        assert_eq!(m.decision_ns_quantile(0.5), None);
        assert_eq!(m.utilization_quantile(0.99), None);
        assert_eq!(bucket_quantile(&[], decision_ns_bucket_bounds, 0.5), None);
    }

    #[test]
    fn quantile_single_sample() {
        // One observation of 100 ns lands in bucket 6 ([64, 128)); with a
        // single sample every quantile sits at the bucket's lower bound.
        let mut hist = vec![0u64; DECISION_NS_BUCKETS];
        hist[6] = 1;
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(
                bucket_quantile(&hist, decision_ns_bucket_bounds, q),
                Some(64.0),
                "q={q}"
            );
        }
    }

    #[test]
    fn quantile_cross_bucket_interpolation() {
        // One sample in [4, 8), one in [8, 16): the median rank 0.5 sits
        // halfway through the first bucket, p100 at the second's floor.
        let mut hist = vec![0u64; DECISION_NS_BUCKETS];
        hist[2] = 1;
        hist[3] = 1;
        assert_eq!(
            bucket_quantile(&hist, decision_ns_bucket_bounds, 0.0),
            Some(4.0)
        );
        assert_eq!(
            bucket_quantile(&hist, decision_ns_bucket_bounds, 0.5),
            Some(6.0)
        );
        assert_eq!(
            bucket_quantile(&hist, decision_ns_bucket_bounds, 1.0),
            Some(8.0)
        );
        // Uniform mass in one utilization decile interpolates inside it.
        let mut util = vec![0u64; UTILIZATION_BUCKETS];
        util[5] = 4;
        // rank 0.5·(4−1)=1.5 of 4 uniform samples → 0.5 + (1.5/4)·0.1.
        let q = bucket_quantile(&util, utilization_bucket_bounds, 0.5).unwrap();
        assert!((q - 0.5375).abs() < 1e-9, "{q}");
    }

    #[test]
    fn update_tracks_sums() {
        let mut rec = Recorder::new("test", 1);
        feed(&mut rec);
        let m = rec.into_metrics().unwrap();
        assert_eq!(m.decision_ns_sum, 107); // 100 + 7
        assert!((m.utilization_sum - 1.5).abs() < 1e-9); // 2/4 + 4/4
    }

    #[test]
    fn merge_adds_counts_and_maxes_peaks() {
        let mut a = Recorder::new("a", 1);
        feed(&mut a);
        let mut a = a.into_metrics().unwrap();
        let mut b = Recorder::new("b", 1);
        feed(&mut b);
        let b = b.into_metrics().unwrap();
        a.merge(&b);
        assert_eq!(a.arrivals, 4);
        assert_eq!(a.placements, 4);
        assert_eq!(a.traced_cost, 36);
        assert_eq!(a.cost_by_type, vec![36]);
        // Identical runs overlap exactly: peak doubles is wrong — peaks
        // max per run; the merged *gauge* doubles instead.
        assert_eq!(a.open_peak_by_type, vec![1]);
        assert_eq!(a.utilization_hist.iter().sum::<u64>(), 4);
        assert_eq!(a.decision_ns_sum, 214);
        assert_eq!(
            a.gauge_timeline,
            vec![
                GaugePoint {
                    t: 0,
                    busy: vec![2]
                },
                GaugePoint {
                    t: 9,
                    busy: vec![0]
                },
            ]
        );
    }

    #[test]
    fn merge_gauge_timelines_sums_step_functions() {
        let a = vec![
            GaugePoint {
                t: 0,
                busy: vec![1],
            },
            GaugePoint {
                t: 10,
                busy: vec![0],
            },
        ];
        let b = vec![
            GaugePoint {
                t: 5,
                busy: vec![2, 1],
            },
            GaugePoint {
                t: 20,
                busy: vec![0, 0],
            },
        ];
        let merged = merge_gauge_timelines(&a, &b);
        assert_eq!(
            merged,
            vec![
                GaugePoint {
                    t: 0,
                    busy: vec![1, 0]
                },
                GaugePoint {
                    t: 5,
                    busy: vec![3, 1]
                },
                GaugePoint {
                    t: 10,
                    busy: vec![2, 1]
                },
                GaugePoint {
                    t: 20,
                    busy: vec![0, 0]
                },
            ]
        );
        // Merging with empty is the identity.
        assert_eq!(merge_gauge_timelines(&[], &a), a);
        assert_eq!(merge_gauge_timelines(&a, &[]), a);
    }

    #[test]
    fn alert_events_aggregate() {
        let mut rec = Recorder::new("health", 1);
        rec.on_alert(10, AlertReason::GapBreach, 0, 1250, 1100);
        rec.on_alert(20, AlertReason::GapBreach, 1, 1300, 1100);
        rec.on_alert(20, AlertReason::DisplacementStorm, 1, 5000, 3000);
        let s = rec.metrics().summary();
        assert!(s.contains("3 SLO breaches"));
        assert!(s.contains("2 gap-breach"));
        let mut m = rec.into_metrics().unwrap();
        assert_eq!(m.alerts, 3);
        assert_eq!(m.alerts_by_reason[AlertReason::GapBreach.index()], 2);
        assert_eq!(
            m.alerts_by_reason[AlertReason::DisplacementStorm.index()],
            1
        );
        assert_eq!(m.alerts_by_reason[AlertReason::DropSurge.index()], 0);
        let other = m.clone();
        m.merge(&other);
        assert_eq!(m.alerts, 6);
        assert_eq!(m.alerts_by_reason[AlertReason::GapBreach.index()], 4);
    }

    #[test]
    fn summary_mentions_counts() {
        let mut rec = Recorder::new("dec-online", 1);
        feed(&mut rec);
        let s = rec.metrics().summary();
        assert!(s.contains("dec-online"));
        assert!(s.contains("2 arrivals"));
    }
}
