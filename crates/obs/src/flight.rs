//! The flight recorder: a bounded ring of the most recent trace events.
//!
//! Long runs cannot afford to keep their whole event stream in memory, but
//! when an SLO alert fires the events *leading up to* the breach are
//! exactly what a post-mortem needs. [`FlightRecorder`] keeps the last
//! `capacity` events in a fixed-size ring — old events fall off the front,
//! with a count of how many were discarded — and
//! [`FlightRecorder::dump`] writes the ring as a JSONL snapshot through
//! the crash-safe [`crate::sink::atomic_write`] path, so a snapshot file
//! is never torn even if the process dies mid-dump.
//!
//! The health plane ([`crate::slo::HealthProbe`]) owns one recorder and
//! dumps it whenever an alert fires; the ring itself is probe-agnostic and
//! can wrap any event source.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::path::Path;

/// A fixed-capacity ring buffer of recent [`TraceEvent`]s.
///
/// Pushing beyond `capacity` evicts the oldest event and increments the
/// [`FlightRecorder::dropped`] counter, so the memory footprint is bounded
/// by construction (the `no-unbounded-buffer` lint in `bshm-analyze`
/// enforces that every ring in this crate declares its capacity).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    /// If `capacity` is zero — a zero-size ring records nothing and a
    /// snapshot of it would silently explain nothing.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FlightRecorder requires capacity > 0");
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The fixed capacity declared at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events have been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many events have fallen off the front of the ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: &TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event.clone());
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// The ring serialized as JSONL (one event per line, oldest first) —
    /// the same shape as a trace file, so every replay tool reads it.
    #[must_use]
    pub fn snapshot_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            if let Ok(line) = serde_json::to_string(e) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Dumps the ring to `path` as a JSONL snapshot, atomically (temp
    /// file + rename via [`crate::sink::atomic_write`]): readers never
    /// observe a torn snapshot.
    ///
    /// # Errors
    /// Propagates filesystem errors from the atomic write.
    pub fn dump(&self, path: &Path) -> Result<(), String> {
        crate::sink::atomic_write(path, &self.snapshot_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bshm_core::job::JobId;

    fn arrival(t: u64) -> TraceEvent {
        TraceEvent::Arrival {
            t,
            job: JobId(t as u32),
            size: 1,
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let mut fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for t in 0..5 {
            fr.push(&arrival(t));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.capacity(), 3);
        assert_eq!(fr.dropped(), 2);
        let times: Vec<u64> = fr.events().map(TraceEvent::time).collect();
        assert_eq!(times, [2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn snapshot_round_trips_through_the_replay_parser() {
        let mut fr = FlightRecorder::new(8);
        for t in 0..4 {
            fr.push(&arrival(t));
        }
        let text = fr.snapshot_jsonl();
        let back = crate::replay::parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back[0], arrival(0));
    }

    #[test]
    fn dump_writes_an_atomic_jsonl_file() {
        let dir = std::env::temp_dir().join("bshm-flight-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.jsonl");
        let mut fr = FlightRecorder::new(2);
        for t in 0..3 {
            fr.push(&arrival(t));
        }
        fr.dump(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = crate::replay::parse_jsonl(&text).unwrap();
        let times: Vec<u64> = back.iter().map(TraceEvent::time).collect();
        assert_eq!(times, [1, 2]);
        assert!(!crate::sink::partial_path(&path).exists());
    }
}
