//! Rolling-window telemetry: sliding-window counterparts of the whole-run
//! [`Metrics`](crate::Metrics) fold.
//!
//! The whole-run recorder answers "what happened over the run"; a live
//! health plane needs "what is happening *now*". [`RollingWindows`] cuts
//! the event stream into fixed-width windows of the **event clock**
//! (via [`bshm_core::WindowClock`], so window boundaries are a pure
//! function of simulation time and two same-seed runs close the same
//! windows at the same instants), folds each window into a
//! [`WindowStats`], and keeps a bounded history ring of closed windows.
//!
//! Per-window quantities mirror their whole-run cousins: windowed
//! decision-latency percentiles reuse the log₂ histogram buckets and
//! [`bucket_quantile`] estimator, the windowed gap ratio reads the last
//! `GapSample` (carried across empty windows, like a gauge), and the
//! open-machine gauge is threaded through windows so a window with no
//! transitions still knows how many machines are busy.
//!
//! [`RollingWindows::totals`] folds every event into a whole-run
//! [`Metrics`] in parallel, which is what the convergence property test
//! checks: the sum of the windows *is* the run.

use crate::event::TraceEvent;
use crate::recorder::{
    bucket_quantile, decision_ns_bucket_bounds, merge_counts, Metrics, DECISION_NS_BUCKETS,
};
use bshm_core::time::TimePoint;
use bshm_core::WindowClock;
use std::collections::VecDeque;

/// Aggregates folded from the events of one event-clock window
/// `[start, end)`.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowStats {
    /// Window index (`start / width`).
    pub window: u64,
    /// Inclusive window start on the event clock.
    pub start: TimePoint,
    /// Exclusive window end on the event clock.
    pub end: TimePoint,
    /// `Arrival` events in the window.
    pub arrivals: u64,
    /// `Departure` events in the window.
    pub departures: u64,
    /// `Placement` events in the window.
    pub placements: u64,
    /// Placements that opened a new machine.
    pub opened_placements: u64,
    /// `MachineOpen` events in the window.
    pub opens: u64,
    /// `MachineClose` events in the window.
    pub closes: u64,
    /// `MachineCrash` events in the window.
    pub crashes: u64,
    /// Jobs displaced by crashes in the window.
    pub displaced_jobs: u64,
    /// `JobRecovery` events in the window.
    pub recovered_jobs: u64,
    /// `JobDropped` events in the window.
    pub dropped_jobs: u64,
    /// `Alert` events charged to the window (fired while it was current).
    pub alerts: u64,
    /// Log₂-bucketed decision-latency histogram for the window.
    pub decision_ns_hist: Vec<u64>,
    /// Sum of decision latencies in the window (exact `_sum`).
    pub decision_ns_sum: u64,
    /// Cost accrued by busy spans closing in the window.
    pub traced_cost: u64,
    /// `GapSample` events in the window.
    pub gap_samples: u64,
    /// Lower bound at the last `GapSample` seen so far (carried across
    /// windows like a gauge; 0 before the first sample).
    pub last_lower_bound: u64,
    /// Accrued cost at the last `GapSample` seen so far (carried).
    pub last_attributed_cost: u64,
    /// Per-type busy-machine gauge at the end of the window (carried).
    pub open_now: Vec<u32>,
}

impl WindowStats {
    fn new(window: u64, start: TimePoint, end: TimePoint, carry: &Carry) -> Self {
        WindowStats {
            window,
            start,
            end,
            arrivals: 0,
            departures: 0,
            placements: 0,
            opened_placements: 0,
            opens: 0,
            closes: 0,
            crashes: 0,
            displaced_jobs: 0,
            recovered_jobs: 0,
            dropped_jobs: 0,
            alerts: 0,
            decision_ns_hist: vec![0; DECISION_NS_BUCKETS],
            decision_ns_sum: 0,
            traced_cost: 0,
            gap_samples: 0,
            last_lower_bound: carry.lower_bound,
            last_attributed_cost: carry.attributed_cost,
            open_now: carry.busy.clone(),
        }
    }

    /// Estimated `q`-quantile of decision latency within the window.
    #[must_use]
    pub fn decision_ns_quantile(&self, q: f64) -> Option<f64> {
        bucket_quantile(&self.decision_ns_hist, decision_ns_bucket_bounds, q)
    }

    /// The windowed gap ratio in fixed-point milli-units:
    /// `1000 × cost / lower_bound` at the last gap sample, computed in
    /// integer arithmetic so it is byte-stable across runs. `None` before
    /// the first sample with a positive lower bound.
    #[must_use]
    pub fn gap_ratio_milli(&self) -> Option<u64> {
        (self.last_lower_bound > 0)
            .then(|| self.last_attributed_cost.saturating_mul(1000) / self.last_lower_bound)
    }

    /// Total busy machines across all types at the end of the window.
    #[must_use]
    pub fn open_machines(&self) -> u64 {
        self.open_now.iter().map(|&b| u64::from(b)).sum()
    }
}

/// State carried from one window into the next (gauges survive window
/// boundaries; counters reset).
#[derive(Clone, Debug, Default)]
struct Carry {
    busy: Vec<u32>,
    lower_bound: u64,
    attributed_cost: u64,
}

/// The rolling-window fold: cuts an event stream into event-clock windows
/// and keeps a bounded ring of the most recent closed [`WindowStats`].
#[derive(Clone, Debug)]
pub struct RollingWindows {
    clock: WindowClock,
    /// Maximum closed windows retained — the history is a bounded ring
    /// (the `no-unbounded-buffer` lint requires the capacity to be
    /// declared, and the health plane must run for unbounded time).
    capacity: usize,
    history: VecDeque<WindowStats>,
    evicted: u64,
    current: Option<WindowStats>,
    carry: Carry,
    totals: Metrics,
    busy_now: Vec<u32>,
}

impl RollingWindows {
    /// A fold over windows of `width` event-clock units, retaining at most
    /// `capacity` closed windows, over `n_types` catalog types.
    ///
    /// # Panics
    /// If `width` is zero (via [`WindowClock::new`]) or `capacity` is zero.
    #[must_use]
    pub fn new(width: u64, capacity: usize, n_types: usize) -> Self {
        assert!(capacity > 0, "RollingWindows requires capacity > 0");
        RollingWindows {
            clock: WindowClock::new(width),
            capacity,
            history: VecDeque::with_capacity(capacity),
            evicted: 0,
            current: None,
            carry: Carry {
                busy: vec![0; n_types],
                lower_bound: 0,
                attributed_cost: 0,
            },
            totals: Metrics::new("windowed", n_types),
            busy_now: vec![0; n_types],
        }
    }

    /// The event-clock window grid.
    #[must_use]
    pub fn clock(&self) -> &WindowClock {
        &self.clock
    }

    /// The declared history capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closed windows evicted from the history ring so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained closed windows, oldest first.
    #[must_use]
    pub fn history(&self) -> &VecDeque<WindowStats> {
        &self.history
    }

    /// The in-progress window, if any event has been observed.
    #[must_use]
    pub fn current(&self) -> Option<&WindowStats> {
        self.current.as_ref()
    }

    /// The whole-run [`Metrics`] folded from every observed event — the
    /// quantity the windows must sum to (convergence property).
    #[must_use]
    pub fn totals(&self) -> &Metrics {
        &self.totals
    }

    /// Folds one event. Returns the windows this event *closed*: empty for
    /// an event inside the current window, one or more (older first,
    /// including empty gap windows) when the event's timestamp crosses one
    /// or more window boundaries. Closed windows are also pushed onto the
    /// bounded history ring.
    pub fn observe(&mut self, event: &TraceEvent) -> Vec<WindowStats> {
        let w = self.clock.index_of(event.time());
        let mut closed = Vec::new();
        match &self.current {
            None => {
                self.current = Some(self.open_window(w));
            }
            Some(cur) if w > cur.window => {
                let from = cur.window;
                for idx in from..w {
                    let mut done = self.current.take().unwrap_or_else(|| self.open_window(idx));
                    done.open_now = self.busy_now.clone();
                    self.remember(done.clone());
                    closed.push(done);
                    self.current = Some(self.open_window(idx + 1));
                }
            }
            Some(_) => {}
        }
        self.fold(event);
        closed
    }

    /// Charges an alert to the current window (alerts are emitted *about*
    /// a just-closed window but fire while its successor is current).
    pub fn note_alert(&mut self) {
        if let Some(cur) = self.current.as_mut() {
            cur.alerts += 1;
        }
        self.totals.alerts += 1;
    }

    /// Closes and returns the in-progress window (end of stream). Further
    /// events start a fresh window.
    pub fn flush(&mut self) -> Option<WindowStats> {
        let mut done = self.current.take()?;
        done.open_now = self.busy_now.clone();
        self.remember(done.clone());
        Some(done)
    }

    fn open_window(&self, idx: u64) -> WindowStats {
        let mut w = WindowStats::new(
            idx,
            self.clock.start_of(idx),
            self.clock.end_of(idx),
            &self.carry,
        );
        w.open_now = self.busy_now.clone();
        w
    }

    fn remember(&mut self, w: WindowStats) {
        self.carry.busy = self.busy_now.clone();
        self.carry.lower_bound = w.last_lower_bound;
        self.carry.attributed_cost = w.last_attributed_cost;
        if self.history.len() == self.capacity {
            self.history.pop_front();
            self.evicted += 1;
        }
        self.history.push_back(w);
    }

    fn fold(&mut self, event: &TraceEvent) {
        self.totals.update(event, &mut self.busy_now);
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        match *event {
            TraceEvent::Arrival { .. } => cur.arrivals += 1,
            TraceEvent::Departure { .. } => cur.departures += 1,
            TraceEvent::Placement {
                opened,
                decision_ns,
                ..
            } => {
                cur.placements += 1;
                if opened {
                    cur.opened_placements += 1;
                }
                let b = if decision_ns == 0 {
                    0
                } else {
                    (decision_ns.ilog2() as usize).min(DECISION_NS_BUCKETS - 1) // bshm-allow(lossy-cast): ilog2 of a u64 is at most 63
                };
                cur.decision_ns_hist[b] += 1;
                cur.decision_ns_sum = cur.decision_ns_sum.saturating_add(decision_ns);
            }
            TraceEvent::MachineOpen { .. } => cur.opens += 1,
            TraceEvent::MachineClose { .. } => cur.closes += 1,
            TraceEvent::CostAccrual { busy, rate, .. } => {
                cur.traced_cost = cur.traced_cost.saturating_add(rate.saturating_mul(busy));
            }
            TraceEvent::MachineCrash { displaced, .. } => {
                cur.crashes += 1;
                cur.displaced_jobs += displaced;
            }
            TraceEvent::JobRecovery { .. } => cur.recovered_jobs += 1,
            TraceEvent::JobDropped { .. } => cur.dropped_jobs += 1,
            TraceEvent::GapSample {
                lower_bound, cost, ..
            } => {
                cur.gap_samples += 1;
                cur.last_lower_bound = lower_bound;
                cur.last_attributed_cost = cost;
            }
            TraceEvent::Decision { .. } => {}
            TraceEvent::Alert { .. } => cur.alerts += 1,
            // Service-lifecycle markers are counted in the run totals
            // (`Metrics::update` above) but do not shape window telemetry.
            TraceEvent::TenantLifecycle { .. } | TraceEvent::Degradation { .. } => {}
        }
        cur.open_now = self.busy_now.clone();
    }
}

/// Sums the per-window counters of `windows` — the left side of the
/// convergence check against a whole-run [`Metrics`] fold.
#[must_use]
pub fn sum_windows(windows: &[WindowStats]) -> WindowStats {
    let mut out = WindowStats::new(0, 0, 0, &Carry::default());
    for w in windows {
        out.end = out.end.max(w.end);
        out.arrivals += w.arrivals;
        out.departures += w.departures;
        out.placements += w.placements;
        out.opened_placements += w.opened_placements;
        out.opens += w.opens;
        out.closes += w.closes;
        out.crashes += w.crashes;
        out.displaced_jobs += w.displaced_jobs;
        out.recovered_jobs += w.recovered_jobs;
        out.dropped_jobs += w.dropped_jobs;
        out.alerts += w.alerts;
        merge_counts(&mut out.decision_ns_hist, &w.decision_ns_hist);
        out.decision_ns_sum += w.decision_ns_sum;
        out.traced_cost += w.traced_cost;
        out.gap_samples += w.gap_samples;
        out.last_lower_bound = w.last_lower_bound;
        out.last_attributed_cost = w.last_attributed_cost;
        out.open_now.clone_from(&w.open_now);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bshm_core::job::JobId;
    use bshm_core::machine::TypeIndex;
    use bshm_core::schedule::MachineId;

    fn arrival(t: u64) -> TraceEvent {
        TraceEvent::Arrival {
            t,
            job: JobId(t as u32),
            size: 1,
        }
    }

    #[test]
    fn windows_close_on_boundary_crossing() {
        let mut rw = RollingWindows::new(10, 8, 1);
        assert!(rw.observe(&arrival(3)).is_empty());
        assert!(rw.observe(&arrival(9)).is_empty());
        let closed = rw.observe(&arrival(10));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].window, 0);
        assert_eq!((closed[0].start, closed[0].end), (0, 10));
        assert_eq!(closed[0].arrivals, 2);
        // A jump across several widths closes the intervening empty windows.
        let closed = rw.observe(&arrival(45));
        let idx: Vec<u64> = closed.iter().map(|w| w.window).collect();
        assert_eq!(idx, [1, 2, 3]);
        assert_eq!(closed[0].arrivals, 1);
        assert_eq!(closed[1].arrivals, 0);
        assert_eq!(rw.current().unwrap().window, 4);
        let last = rw.flush().unwrap();
        assert_eq!(last.window, 4);
        assert_eq!(last.arrivals, 1);
        assert!(rw.flush().is_none());
    }

    #[test]
    fn gauges_carry_across_windows() {
        let mut rw = RollingWindows::new(10, 8, 2);
        rw.observe(&TraceEvent::MachineOpen {
            t: 1,
            machine: MachineId(0),
            machine_type: TypeIndex(1),
        });
        rw.observe(&TraceEvent::GapSample {
            t: 2,
            lower_bound: 4,
            cost: 6,
        });
        // Next window has no transitions and no samples…
        let closed = rw.observe(&arrival(25));
        assert_eq!(closed.len(), 2);
        // …but the gauge and the gap sample carry.
        let w2 = rw.flush().unwrap();
        assert_eq!(w2.open_now, vec![0, 1]);
        assert_eq!(w2.gap_samples, 0);
        assert_eq!(w2.gap_ratio_milli(), Some(1500));
        assert_eq!(w2.open_machines(), 1);
    }

    #[test]
    fn history_ring_is_bounded() {
        let mut rw = RollingWindows::new(1, 3, 1);
        for t in 0..10 {
            rw.observe(&arrival(t));
        }
        assert_eq!(rw.history().len(), 3);
        assert_eq!(rw.capacity(), 3);
        assert_eq!(rw.evicted(), 6);
        let kept: Vec<u64> = rw.history().iter().map(|w| w.window).collect();
        assert_eq!(kept, [6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_is_rejected() {
        let _ = RollingWindows::new(10, 0, 1);
    }

    #[test]
    fn windowed_latency_quantiles_use_the_shared_estimator() {
        let mut rw = RollingWindows::new(100, 4, 1);
        for (i, ns) in [0u64, 10, 100, 1000, 10_000].iter().enumerate() {
            rw.observe(&TraceEvent::Placement {
                t: i as u64,
                job: JobId(i as u32),
                machine: MachineId(0),
                machine_type: TypeIndex(0),
                opened: false,
                decision_ns: *ns,
                load: 1,
                capacity: 4,
            });
        }
        let w = rw.flush().unwrap();
        assert_eq!(w.placements, 5);
        let p50 = w.decision_ns_quantile(0.5).unwrap();
        assert!((64.0..256.0).contains(&p50), "p50 = {p50}");
        assert!(w.decision_ns_quantile(1.0).unwrap() >= 8192.0);
    }

    #[test]
    fn sum_of_windows_matches_totals() {
        let mut rw = RollingWindows::new(7, 64, 1);
        let mut events = Vec::new();
        for t in 0..40u64 {
            events.push(arrival(t));
            if t % 3 == 0 {
                events.push(TraceEvent::Departure {
                    t,
                    job: JobId(t as u32),
                    machine: MachineId(0),
                });
            }
        }
        let mut closed = Vec::new();
        for e in &events {
            closed.extend(rw.observe(e));
        }
        closed.extend(rw.flush());
        let sum = sum_windows(&closed);
        let totals = rw.totals();
        assert_eq!(sum.arrivals, totals.arrivals);
        assert_eq!(sum.departures, totals.departures);
        assert_eq!(sum.arrivals, 40);
    }
}
