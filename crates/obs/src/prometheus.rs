//! Prometheus text-exposition encoding of [`Metrics`] and span timers.
//!
//! [`encode`] renders the aggregated run metrics in the Prometheus
//! text format (version 0.0.4): `# HELP`/`# TYPE` headers, counter and
//! gauge samples, and the two bucketed histograms as cumulative
//! `_bucket{le="…"}` series with exact `_sum`/`_count`. The output is
//! scrapeable as-is (e.g. served from a file or a textfile-collector
//! directory) and every line is checked by [`validate_exposition`], a
//! small parser used by the test suite as the acceptance gate.

use crate::event::AlertReason;
use crate::recorder::{
    decision_ns_bucket_bounds, ops_bucket_bounds, utilization_bucket_bounds, Metrics,
};
use crate::span::SpanStat;
use bshm_core::ops::RejectReason;
use std::fmt::Write as _;

/// Escapes a label value (backslash, double-quote, newline).
pub(crate) fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a float the way Prometheus expects (integral values without a
/// trailing `.0` are fine; non-finite values are not produced here).
pub(crate) fn fmt_value(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64) // bshm-allow(lossy-cast): guarded — x is integral with |x| < 1e15, well inside i64
    } else {
        format!("{x}")
    }
}

struct Exposition {
    out: String,
}

impl Exposition {
    fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {}", fmt_value(value));
        } else {
            let rendered: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect();
            let _ = writeln!(
                self.out,
                "{name}{{{}}} {}",
                rendered.join(","),
                fmt_value(value)
            );
        }
    }

    /// Emits one histogram family: cumulative buckets (trimmed past the
    /// last non-empty one), `+Inf`, `_sum` and `_count`.
    fn histogram(
        &mut self,
        name: &str,
        help: &str,
        base: &[(&str, String)],
        counts: &[u64],
        bounds: impl Fn(usize) -> (f64, f64),
        sum: f64,
    ) {
        self.header(name, "histogram", help);
        let last = counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate().take(last.max(1)) {
            cum += c;
            let mut labels = base.to_vec();
            labels.push(("le", fmt_value(bounds(i).1)));
            self.sample(&format!("{name}_bucket"), &labels, cum as f64);
        }
        let total: u64 = counts.iter().sum();
        let mut labels = base.to_vec();
        labels.push(("le", "+Inf".to_string()));
        self.sample(&format!("{name}_bucket"), &labels, total as f64);
        self.sample(&format!("{name}_sum"), base, sum);
        self.sample(&format!("{name}_count"), base, total as f64);
    }
}

/// Renders `metrics` (plus optional hot-path `spans`) as Prometheus text
/// exposition. All families are prefixed `bshm_` and carry an
/// `algorithm` label; per-type series add a `type` label.
#[must_use]
pub fn encode(metrics: &Metrics, spans: &[SpanStat]) -> String {
    let mut e = Exposition { out: String::new() };
    let alg = |_: ()| vec![("algorithm", metrics.algorithm.clone())];
    let base = alg(());

    let counters: [(&str, &str, f64); 14] = [
        (
            "bshm_arrivals_total",
            "Jobs arrived.",
            metrics.arrivals as f64,
        ),
        (
            "bshm_departures_total",
            "Jobs departed.",
            metrics.departures as f64,
        ),
        (
            "bshm_placements_total",
            "Placement decisions made.",
            metrics.placements as f64,
        ),
        (
            "bshm_placements_opened_total",
            "Placements that created a new machine.",
            metrics.opened_placements as f64,
        ),
        (
            "bshm_placements_reused_total",
            "Placements onto an existing machine.",
            metrics.reused_placements as f64,
        ),
        (
            "bshm_machine_opens_total",
            "Machine idle-to-busy transitions.",
            metrics.opens as f64,
        ),
        (
            "bshm_machine_closes_total",
            "Machine busy-to-idle transitions.",
            metrics.closes as f64,
        ),
        (
            "bshm_cost_total",
            "Cost accrued over closed busy spans (rate times ticks).",
            metrics.traced_cost as f64,
        ),
        (
            "bshm_machine_crashes_total",
            "Machines crashed/revoked by a fault plan.",
            metrics.crashes as f64,
        ),
        (
            "bshm_jobs_displaced_total",
            "Active jobs displaced by machine crashes.",
            metrics.displaced_jobs as f64,
        ),
        (
            "bshm_jobs_recovered_total",
            "Displaced jobs re-placed by a recovery policy.",
            metrics.recovered_jobs as f64,
        ),
        (
            "bshm_jobs_dropped_total",
            "Jobs explicitly dropped with a reason (never silent).",
            metrics.dropped_jobs as f64,
        ),
        (
            "bshm_recovery_latency_ns_total",
            "Wall-clock nanoseconds spent in recovery re-placement decisions.",
            metrics.recovery_ns_sum as f64,
        ),
        (
            "bshm_gap_samples_total",
            "Gap-gauge samples observed (GapSample trace events).",
            metrics.gap_samples as f64,
        ),
    ];
    for (name, help, value) in counters {
        e.header(name, "counter", help);
        e.sample(name, &base, value);
    }

    e.header(
        "bshm_cost_by_type_total",
        "counter",
        "Accrued cost per catalog machine type.",
    );
    for (i, &c) in metrics.cost_by_type.iter().enumerate() {
        let mut labels = base.clone();
        labels.push(("type", i.to_string()));
        e.sample("bshm_cost_by_type_total", &labels, c as f64);
    }

    e.header(
        "bshm_open_machines_peak",
        "gauge",
        "Peak simultaneously-busy machines per catalog type.",
    );
    for (i, &p) in metrics.open_peak_by_type.iter().enumerate() {
        let mut labels = base.clone();
        labels.push(("type", i.to_string()));
        e.sample("bshm_open_machines_peak", &labels, f64::from(p));
    }

    e.header(
        "bshm_open_machines",
        "gauge",
        "Busy machines per catalog type at the last gauge transition.",
    );
    let final_gauge = metrics.gauge_timeline.last();
    for i in 0..metrics.open_peak_by_type.len() {
        let mut labels = base.clone();
        labels.push(("type", i.to_string()));
        let v = final_gauge
            .and_then(|g| g.busy.get(i))
            .copied()
            .unwrap_or(0);
        e.sample("bshm_open_machines", &labels, f64::from(v));
    }

    e.header(
        "bshm_lower_bound",
        "gauge",
        "Incrementally maintained busy-time lower bound at the last gap sample.",
    );
    e.sample("bshm_lower_bound", &base, metrics.last_lower_bound as f64);
    e.header(
        "bshm_attributed_cost",
        "gauge",
        "Cost accrued (and attributed to jobs) at the last gap sample.",
    );
    e.sample(
        "bshm_attributed_cost",
        &base,
        metrics.last_attributed_cost as f64,
    );
    e.header(
        "bshm_gap_ratio",
        "gauge",
        "Cost over lower bound at the last gap sample (0 before the first).",
    );
    e.sample("bshm_gap_ratio", &base, metrics.gap_ratio().unwrap_or(0.0));
    e.header(
        "bshm_gap_ratio_max",
        "gauge",
        "Largest cost-over-lower-bound ratio seen at any gap sample.",
    );
    e.sample("bshm_gap_ratio_max", &base, metrics.max_gap_ratio);

    e.header(
        "bshm_alerts_total",
        "counter",
        "SLO alerts fired by the deterministic health plane.",
    );
    e.sample("bshm_alerts_total", &base, metrics.alerts as f64);
    e.header(
        "bshm_alerts_by_reason_total",
        "counter",
        "SLO alerts per typed reason.",
    );
    for (r, &c) in AlertReason::ALL.iter().zip(&metrics.alerts_by_reason) {
        let mut labels = base.clone();
        labels.push(("reason", r.as_str().to_string()));
        e.sample("bshm_alerts_by_reason_total", &labels, c as f64);
    }

    e.header(
        "bshm_tenant_transitions_total",
        "counter",
        "Tenant lifecycle transitions recorded by the resident service.",
    );
    e.sample(
        "bshm_tenant_transitions_total",
        &base,
        metrics.tenant_transitions as f64,
    );
    e.header(
        "bshm_degradations_total",
        "counter",
        "Degradation-ladder rung transitions recorded by the resident service.",
    );
    e.sample(
        "bshm_degradations_total",
        &base,
        metrics.degradations as f64,
    );

    let ops_counters: [(&str, &str, f64); 5] = [
        (
            "bshm_ops_decisions_total",
            "Placement decisions carrying deterministic operation counts.",
            metrics.ops.decisions as f64,
        ),
        (
            "bshm_ops_machines_scanned_total",
            "Candidate machines examined across all decisions.",
            metrics.ops.machines_scanned as f64,
        ),
        (
            "bshm_ops_capacity_comparisons_total",
            "Residual-capacity / fit comparisons evaluated across all decisions.",
            metrics.ops.capacity_comparisons as f64,
        ),
        (
            "bshm_ops_machines_opened_total",
            "Decisions that created a new machine.",
            metrics.ops.machines_opened as f64,
        ),
        (
            "bshm_ops_machines_reused_total",
            "Decisions that reused an existing machine.",
            metrics.ops.machines_reused as f64,
        ),
    ];
    for (name, help, value) in ops_counters {
        e.header(name, "counter", help);
        e.sample(name, &base, value);
    }
    e.header(
        "bshm_ops_rejections_total",
        "counter",
        "Candidates rejected per typed reason across all decisions.",
    );
    for r in RejectReason::ALL {
        let mut labels = base.clone();
        labels.push(("reason", r.as_str().to_string()));
        e.sample(
            "bshm_ops_rejections_total",
            &labels,
            metrics.ops.rejected(r) as f64,
        );
    }

    e.histogram(
        "bshm_ops_per_decision",
        "Deterministic scan work (machines scanned plus comparisons) per placement decision.",
        &base,
        &metrics.ops_hist,
        ops_bucket_bounds,
        metrics.ops_sum as f64,
    );
    e.histogram(
        "bshm_decision_latency_ns",
        "Placement decision wall-clock latency in nanoseconds.",
        &base,
        &metrics.decision_ns_hist,
        decision_ns_bucket_bounds,
        metrics.decision_ns_sum as f64,
    );
    e.histogram(
        "bshm_machine_utilization",
        "Machine fill (load over capacity) right after each placement.",
        &base,
        &metrics.utilization_hist,
        utilization_bucket_bounds,
        metrics.utilization_sum,
    );

    if !spans.is_empty() {
        e.header(
            "bshm_span_duration_ns_total",
            "counter",
            "Total wall-clock nanoseconds spent in a named hot-path span.",
        );
        for s in spans {
            let mut labels = base.clone();
            labels.push(("span", s.name.clone()));
            e.sample("bshm_span_duration_ns_total", &labels, s.total_ns as f64);
        }
        e.header(
            "bshm_span_invocations_total",
            "counter",
            "Completed invocations of a named hot-path span.",
        );
        for s in spans {
            let mut labels = base.clone();
            labels.push(("span", s.name.clone()));
            e.sample("bshm_span_invocations_total", &labels, s.count as f64);
        }
    }
    e.out
}

// ------------------------------------------------------------- validation

/// Checks that `text` is well-formed Prometheus text exposition:
///
/// * every line is blank, a `# HELP`/`# TYPE` header, or a sample matching
///   `name{label="value",…} value`;
/// * every sample belongs to a `# TYPE`-declared family (histogram
///   samples via their `_bucket`/`_sum`/`_count` suffix);
/// * every declared histogram emits `_bucket`, `_sum` and `_count`, its
///   buckets are cumulative (non-decreasing in `le` order), and the
///   `+Inf` bucket equals `_count`.
///
/// # Errors
/// Describes the first offending line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    // Histogram family -> per-series (label set minus `le`) bucket state.
    // One family can carry many label sets; cumulativity and the
    // +Inf == _count invariant hold per series, not per family.
    #[derive(Default)]
    struct SeriesState {
        last_bucket: Option<f64>,
        inf: Option<f64>,
        count: Option<f64>,
    }
    #[derive(Default)]
    struct HistState {
        saw_sum: bool,
        saw_count: bool,
        series: std::collections::BTreeMap<String, SeriesState>,
    }
    let mut hists: std::collections::BTreeMap<String, HistState> =
        std::collections::BTreeMap::new();
    fn series_key(labels: &[(String, String)]) -> String {
        let mut parts: Vec<String> = labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        parts.sort();
        parts.join(",")
    }

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !is_metric_name(name) {
                return Err(format!("line {n}: bad metric name in TYPE: {line}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
            }
            if kind == "histogram" {
                hists.entry(name.to_string()).or_default();
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            if !line.starts_with("# HELP ") {
                return Err(format!("line {n}: unexpected comment {line:?}"));
            }
            continue;
        }
        let (name, labels, value) = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = name.strip_suffix(suf)?;
                hists.contains_key(base).then(|| base.to_string())
            })
            .unwrap_or_else(|| name.clone());
        if !types.contains_key(&family) {
            return Err(format!("line {n}: sample {name} has no # TYPE declaration"));
        }
        if let Some(h) = hists.get_mut(&family) {
            let series = h.series.entry(series_key(&labels)).or_default();
            if name.ends_with("_sum") {
                h.saw_sum = true;
            } else if name.ends_with("_count") {
                h.saw_count = true;
                series.count = Some(value);
            } else if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
                if le == "+Inf" {
                    series.inf = Some(value);
                } else {
                    if let Some(prev) = series.last_bucket {
                        if value < prev {
                            return Err(format!(
                                "line {n}: bucket le={le} not cumulative ({value} < {prev})"
                            ));
                        }
                    }
                    series.last_bucket = Some(value);
                }
            } else {
                return Err(format!("line {n}: bare sample {name} in histogram family"));
            }
        }
    }
    for (family, h) in &hists {
        if !h.saw_sum || !h.saw_count {
            return Err(format!("histogram {family}: missing _sum or _count"));
        }
        for (key, series) in &h.series {
            match (series.inf, series.count) {
                (Some(i), Some(c)) if (i - c).abs() < 1e-9 => {}
                (i, c) => {
                    return Err(format!(
                        "histogram {family}{{{key}}}: +Inf bucket {i:?} does not equal _count {c:?}"
                    ))
                }
            }
        }
    }
    Ok(())
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed sample line: metric name, label pairs, value.
type Sample = (String, Vec<(String, String)>, f64);

/// Parses one sample line into `(name, labels, value)`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value_str) = match line.find('}') {
        Some(close) => {
            let (h, rest) = line.split_at(close + 1);
            (h, rest.trim())
        }
        None => {
            let mut it = line.splitn(2, ' ');
            (it.next().unwrap_or(""), it.next().unwrap_or("").trim())
        }
    };
    let (name, labels) = match head.find('{') {
        Some(open) => {
            if !head.ends_with('}') || open + 1 >= head.len() {
                return Err(format!("unbalanced label braces in {line:?}"));
            }
            let name = &head[..open];
            let inner = head[open + 1..head.len() - 1].trim_end_matches(',');
            let mut labels = Vec::new();
            if !inner.is_empty() {
                for pair in split_label_pairs(inner)? {
                    labels.push(pair);
                }
            }
            (name.to_string(), labels)
        }
        None => (head.to_string(), Vec::new()),
    };
    if !is_metric_name(&name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {v:?}"))?,
    };
    Ok((name, labels, value))
}

/// Splits `k="v",k2="v2"` respecting escaped quotes inside values.
fn split_label_pairs(inner: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let eq = inner[i..]
            .find('=')
            .map(|p| i + p)
            .ok_or_else(|| format!("label pair without `=` in {inner:?}"))?;
        let key = inner[i..eq].trim().to_string();
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err(format!("label {key:?} value not quoted"));
        }
        let mut j = eq + 2;
        let mut value = String::new();
        loop {
            match bytes.get(j) {
                None => return Err(format!("unterminated label value for {key:?}")),
                Some(b'\\') => {
                    if let Some(&c) = bytes.get(j + 1) {
                        value.push(c as char);
                        j += 2;
                    } else {
                        return Err("dangling escape".to_string());
                    }
                }
                Some(b'"') => {
                    j += 1;
                    break;
                }
                Some(&c) => {
                    value.push(c as char);
                    j += 1;
                }
            }
        }
        pairs.push((key, value));
        if bytes.get(j) == Some(&b',') {
            j += 1;
        }
        i = j;
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;
    use crate::recorder::Recorder;
    use bshm_core::job::JobId;
    use bshm_core::machine::TypeIndex;
    use bshm_core::schedule::MachineId;

    fn sample_metrics() -> Metrics {
        let mut rec = Recorder::new("dec-online", 2);
        rec.on_arrival(0, JobId(0), 2);
        rec.on_machine_open(0, MachineId(0), TypeIndex(0));
        rec.on_placement(0, JobId(0), MachineId(0), TypeIndex(0), true, 100, 2, 4);
        rec.on_arrival(1, JobId(1), 8);
        rec.on_machine_open(1, MachineId(1), TypeIndex(1));
        rec.on_placement(1, JobId(1), MachineId(1), TypeIndex(1), true, 7, 8, 16);
        rec.on_departure(5, JobId(0), MachineId(0));
        rec.on_cost_accrual(5, MachineId(0), TypeIndex(0), 5, 2);
        rec.on_machine_close(5, MachineId(0), TypeIndex(0), 0);
        rec.on_departure(9, JobId(1), MachineId(1));
        rec.on_cost_accrual(9, MachineId(1), TypeIndex(1), 8, 3);
        rec.on_machine_close(9, MachineId(1), TypeIndex(1), 1);
        rec.into_metrics().unwrap()
    }

    #[test]
    fn encode_is_valid_exposition() {
        let m = sample_metrics();
        let text = encode(&m, &[]);
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE bshm_arrivals_total counter"));
        assert!(text.contains("bshm_arrivals_total{algorithm=\"dec-online\"} 2"));
        assert!(text.contains("# TYPE bshm_decision_latency_ns histogram"));
        assert!(text.contains("bshm_decision_latency_ns_count{algorithm=\"dec-online\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("bshm_cost_by_type_total{algorithm=\"dec-online\",type=\"1\"} 24"));
    }

    #[test]
    fn encode_includes_fault_counters() {
        let mut rec = Recorder::new("dec-online", 1);
        rec.on_machine_crash(4, MachineId(0), TypeIndex(0), 2);
        rec.on_job_recovery(4, JobId(0), MachineId(0), MachineId(1), TypeIndex(0), 50);
        rec.on_job_dropped(4, JobId(1), "no capacity");
        let m = rec.into_metrics().unwrap();
        let text = encode(&m, &[]);
        validate_exposition(&text).unwrap();
        assert!(text.contains("bshm_machine_crashes_total{algorithm=\"dec-online\"} 1"));
        assert!(text.contains("bshm_jobs_displaced_total{algorithm=\"dec-online\"} 2"));
        assert!(text.contains("bshm_jobs_recovered_total{algorithm=\"dec-online\"} 1"));
        assert!(text.contains("bshm_jobs_dropped_total{algorithm=\"dec-online\"} 1"));
        assert!(text.contains("bshm_recovery_latency_ns_total{algorithm=\"dec-online\"} 50"));
    }

    #[test]
    fn encode_includes_alert_counters() {
        let mut rec = Recorder::new("dec-online", 1);
        rec.on_alert(10, AlertReason::DisplacementStorm, 0, 5000, 3000);
        rec.on_alert(20, AlertReason::GapBreach, 1, 1300, 1100);
        let m = rec.into_metrics().unwrap();
        let text = encode(&m, &[]);
        validate_exposition(&text).unwrap();
        assert!(text.contains("bshm_alerts_total{algorithm=\"dec-online\"} 2"));
        assert!(text.contains(
            "bshm_alerts_by_reason_total{algorithm=\"dec-online\",reason=\"displacement-storm\"} 1"
        ));
        assert!(text.contains(
            "bshm_alerts_by_reason_total{algorithm=\"dec-online\",reason=\"drop-surge\"} 0"
        ));
    }

    #[test]
    fn encode_includes_spans() {
        let m = sample_metrics();
        let spans = vec![SpanStat {
            name: "core::lower_bound".into(),
            count: 3,
            total_ns: 4500,
            max_ns: 2000,
        }];
        let text = encode(&m, &spans);
        validate_exposition(&text).unwrap();
        assert!(text.contains(
            "bshm_span_duration_ns_total{algorithm=\"dec-online\",span=\"core::lower_bound\"} 4500"
        ));
    }

    #[test]
    fn empty_metrics_still_valid() {
        let m = Metrics::new("auto", 0);
        let text = encode(&m, &[]);
        validate_exposition(&text).unwrap();
        assert!(text.contains("bshm_placements_total{algorithm=\"auto\"} 0"));
    }

    #[test]
    fn histogram_sum_is_exact() {
        let m = sample_metrics();
        let text = encode(&m, &[]);
        assert!(text.contains("bshm_decision_latency_ns_sum{algorithm=\"dec-online\"} 107"));
        // 2/4 + 8/16 = 1.0
        assert!(text.contains("bshm_machine_utilization_sum{algorithm=\"dec-online\"} 1"));
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_exposition("no_type_decl 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx{bad} 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx nope\n").is_err());
        // JSON (or any brace soup) must error, not panic.
        assert!(validate_exposition("{\n  \"arrivals\": 25,\n}\n").is_err());
        assert!(validate_exposition("x{ 1\n").is_err());
        // Non-cumulative histogram buckets.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\n\
                   h_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad).unwrap_err().contains("cumulative"));
        // +Inf bucket must equal _count.
        let bad2 = "# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 4\n\
                    h_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad2).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn label_escaping_round_trips() {
        // Quotes, backslashes and newlines must all render escaped —
        // a raw newline would split the sample across exposition lines.
        let mut m = Metrics::new("weird\"alg\\name\nline", 1);
        m.arrivals = 1;
        let text = encode(&m, &[]);
        validate_exposition(&text).unwrap();
        assert!(text.contains("algorithm=\"weird\\\"alg\\\\name\\nline\""));
        assert!(!text.contains("weird\"alg"));
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_label("plain"), "plain");
    }

    #[test]
    fn encode_includes_ops_families() {
        use crate::event::TraceEvent;
        use bshm_core::ops::{OpCounter, PlaceReason, RejectedCandidate};
        let mut rec = Recorder::new("best-fit", 1);
        rec.record(&TraceEvent::Decision {
            t: 0,
            job: JobId(0),
            machine: MachineId(1),
            placed: PlaceReason::Reused,
            pool_size: 2,
            candidates: vec![RejectedCandidate {
                machine: MachineId(0),
                reason: RejectReason::Capacity,
            }],
            ops: OpCounter {
                decisions: 1,
                machines_scanned: 2,
                capacity_comparisons: 2,
                rejected_capacity: 1,
                machines_reused: 1,
                ..OpCounter::default()
            },
        });
        let m = rec.into_metrics().unwrap();
        assert_eq!(m.ops_sum, 4);
        let text = encode(&m, &[]);
        validate_exposition(&text).unwrap();
        assert!(text.contains("bshm_ops_decisions_total{algorithm=\"best-fit\"} 1"));
        assert!(text.contains("bshm_ops_machines_scanned_total{algorithm=\"best-fit\"} 2"));
        assert!(text.contains("bshm_ops_machines_reused_total{algorithm=\"best-fit\"} 1"));
        assert!(text
            .contains("bshm_ops_rejections_total{algorithm=\"best-fit\",reason=\"capacity\"} 1"));
        assert!(text.contains(
            "bshm_ops_rejections_total{algorithm=\"best-fit\",reason=\"window_expired\"} 0"
        ));
        assert!(text.contains("bshm_ops_per_decision_count{algorithm=\"best-fit\"} 1"));
        assert!(text.contains("bshm_ops_per_decision_sum{algorithm=\"best-fit\"} 4"));
    }
}
