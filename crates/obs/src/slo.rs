//! The deterministic SLO engine: declarative thresholds over rolling
//! windows, typed alerts, and flight-recorder snapshots on breach.
//!
//! An [`SloSpec`] is a compact, parseable rule list (see the grammar on
//! [`SloSpec::parse`]). [`SloEngine`] evaluates the rules against each
//! closed [`WindowStats`] and decides — in pure integer arithmetic over
//! event-clock quantities wherever the rule allows it — whether an alert
//! fires. Because window boundaries come from the event clock and the
//! compared values are fixed-point milli-units, two same-seed runs emit
//! **byte-identical** alert streams; the health plane's property tests
//! gate on exactly that.
//!
//! [`HealthProbe`] packages the pieces as a probe middleware: it feeds a
//! [`RollingWindows`] fold and a [`FlightRecorder`] ring, asks the engine
//! about every window it closes, emits [`TraceEvent::Alert`] records into
//! the wrapped probe (alerts are departure-side events stamped with the
//! closed window's end), and — when given a snapshot directory — dumps
//! the flight recorder at each breach for post-mortems.

use crate::event::{AlertReason, TraceEvent};
use crate::flight::FlightRecorder;
use crate::probe::Probe;
use crate::window::{RollingWindows, WindowStats};
use bshm_core::time::TimePoint;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// The default SLO spec the CLI and CI use: event-clock rules only (the
/// wall-clock `latency:` rule is opt-in, because latency jitter would make
/// clean CI runs flaky).
///
/// * gap ratio above 20× the lower bound for 2 consecutive windows — far
///   above anything the quick suite's algorithms sustain (their proven
///   bounds top out at 32·(μ+1), observed max ratios at 16), so a breach
///   means real divergence;
/// * any displaced job (a crash that interrupted running work);
/// * any dropped job.
pub const DEFAULT_SLO_SPEC: &str = "window:64;gap:20000:2;storm:1;drops:1";

/// Default flight-recorder capacity for [`HealthProbe`] snapshots.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One declarative SLO rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SloRule {
    /// Windowed gap ratio (milli-units) above `threshold_milli` for
    /// `windows` consecutive windows → [`AlertReason::GapBreach`].
    Gap {
        /// Fixed-point ratio threshold (1000 = ratio 1.0).
        threshold_milli: u64,
        /// Consecutive breaching windows required to fire.
        windows: u64,
    },
    /// `displaced` or more jobs displaced within one window →
    /// [`AlertReason::DisplacementStorm`].
    Storm {
        /// Displaced-job count that counts as a storm.
        displaced: u64,
    },
    /// Windowed p99 decision latency above `factor_milli`/1000 × the
    /// run-start baseline (the first window with placements) for
    /// `windows` consecutive windows → [`AlertReason::LatencyRegression`].
    Latency {
        /// Fixed-point regression factor (1000 = 1.0× baseline).
        factor_milli: u64,
        /// Consecutive regressing windows required to fire.
        windows: u64,
    },
    /// `dropped` or more jobs dropped within one window →
    /// [`AlertReason::DropSurge`].
    Drops {
        /// Dropped-job count that counts as a surge.
        dropped: u64,
    },
}

/// A parsed SLO spec: the window width plus the rule list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloSpec {
    /// Event-clock window width the rules are evaluated over.
    pub width: u64,
    /// The rules, in spec order.
    pub rules: Vec<SloRule>,
}

impl Default for SloSpec {
    fn default() -> Self {
        // bshm-allow(no-panic): DEFAULT_SLO_SPEC is a constant whose parse is covered by tests
        SloSpec::parse(DEFAULT_SLO_SPEC).expect("DEFAULT_SLO_SPEC parses")
    }
}

impl SloSpec {
    /// Parses the semicolon-separated spec grammar:
    ///
    /// ```text
    /// spec      := directive (';' directive)*
    /// directive := 'window:' WIDTH          — event-clock window width (default 64)
    ///            | 'gap:' MILLI ':' N       — gap ratio > MILLI/1000 for N windows
    ///            | 'storm:' COUNT           — ≥ COUNT displaced jobs in a window
    ///            | 'latency:' MILLI ':' N   — p99 > MILLI/1000 × baseline for N windows
    ///            | 'drops:' COUNT           — ≥ COUNT dropped jobs in a window
    /// ```
    ///
    /// All thresholds are integers (ratios and factors in fixed-point
    /// milli-units), so a spec never smuggles a float into the
    /// deterministic alert path.
    ///
    /// # Errors
    /// Describes the offending directive.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec {
            width: 64,
            rules: Vec::new(),
        };
        for directive in s.split(';') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            let fields: Vec<&str> = directive.split(':').collect();
            let num = |i: usize, what: &str| -> Result<u64, String> {
                fields
                    .get(i)
                    .and_then(|f| f.trim().parse::<u64>().ok())
                    .ok_or_else(|| format!("slo spec `{directive}`: bad {what}"))
            };
            match fields.first().map(|f| f.trim()) {
                Some("window") if fields.len() == 2 => {
                    let w = num(1, "width")?;
                    if w == 0 {
                        return Err(format!("slo spec `{directive}`: width must be > 0"));
                    }
                    spec.width = w;
                }
                Some("gap") if fields.len() == 3 => {
                    let windows = num(2, "window count")?.max(1);
                    spec.rules.push(SloRule::Gap {
                        threshold_milli: num(1, "threshold")?,
                        windows,
                    });
                }
                Some("storm") if fields.len() == 2 => {
                    let displaced = num(1, "count")?;
                    if displaced == 0 {
                        return Err(format!("slo spec `{directive}`: count must be > 0"));
                    }
                    spec.rules.push(SloRule::Storm { displaced });
                }
                Some("latency") if fields.len() == 3 => {
                    let windows = num(2, "window count")?.max(1);
                    spec.rules.push(SloRule::Latency {
                        factor_milli: num(1, "factor")?,
                        windows,
                    });
                }
                Some("drops") if fields.len() == 2 => {
                    let dropped = num(1, "count")?;
                    if dropped == 0 {
                        return Err(format!("slo spec `{directive}`: count must be > 0"));
                    }
                    spec.rules.push(SloRule::Drops { dropped });
                }
                _ => {
                    return Err(format!(
                        "slo spec `{directive}`: expected window:W, gap:MILLI:N, \
                         storm:COUNT, latency:MILLI:N or drops:COUNT"
                    ));
                }
            }
        }
        Ok(spec)
    }

    /// Renders the spec back in the grammar of [`SloSpec::parse`].
    #[must_use]
    pub fn render(&self) -> String {
        let mut parts = vec![format!("window:{}", self.width)];
        for r in &self.rules {
            parts.push(match *r {
                SloRule::Gap {
                    threshold_milli,
                    windows,
                } => format!("gap:{threshold_milli}:{windows}"),
                SloRule::Storm { displaced } => format!("storm:{displaced}"),
                SloRule::Latency {
                    factor_milli,
                    windows,
                } => format!("latency:{factor_milli}:{windows}"),
                SloRule::Drops { dropped } => format!("drops:{dropped}"),
            });
        }
        parts.join(";")
    }
}

/// One alert decision: which rule fired about which window, with the
/// observed value and the threshold it crossed (fixed-point milli-units).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct AlertFire {
    /// The typed reason.
    pub reason: AlertReason,
    /// Index of the breaching window.
    pub window: u64,
    /// Observed value in milli-units (ratio ×1000, counts ×1000, ns ×1000).
    pub value_milli: u64,
    /// The crossed threshold in the same milli-units.
    pub threshold_milli: u64,
}

/// Evaluates an [`SloSpec`] against a stream of closed windows.
///
/// Streak rules (`gap:`, `latency:`) fire exactly once per sustained
/// episode — on the window that completes the required consecutive run —
/// and re-arm when the condition clears. Per-window rules (`storm:`,
/// `drops:`) fire on every breaching window.
#[derive(Clone, Debug)]
pub struct SloEngine {
    spec: SloSpec,
    gap_streak: u64,
    latency_streak: u64,
    latency_baseline_milli: Option<u64>,
}

impl SloEngine {
    /// An engine for `spec`, with all streaks cleared.
    #[must_use]
    pub fn new(spec: SloSpec) -> Self {
        SloEngine {
            spec,
            gap_streak: 0,
            latency_streak: 0,
            latency_baseline_milli: None,
        }
    }

    /// The spec under evaluation.
    #[must_use]
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Evaluates one closed window; returns every rule that fires on it,
    /// in spec order (deterministic).
    pub fn evaluate(&mut self, w: &WindowStats) -> Vec<AlertFire> {
        // p99 in milli-ns, fixed-point. The f64 quantile estimate is a
        // pure function of the (integer) histogram, so the cast is stable
        // for identical windows.
        let p99_milli = w.decision_ns_quantile(0.99).map(|q| (q * 1000.0) as u64); // bshm-allow(lossy-cast): fixed-point milli conversion of a bounded quantile
        if self.latency_baseline_milli.is_none() && w.placements > 0 {
            self.latency_baseline_milli = p99_milli;
        }
        let mut fires = Vec::new();
        for rule in &self.spec.rules {
            match *rule {
                SloRule::Gap {
                    threshold_milli,
                    windows,
                } => {
                    let value = w.gap_ratio_milli().unwrap_or(0);
                    if value > threshold_milli {
                        self.gap_streak += 1;
                        if self.gap_streak == windows {
                            fires.push(AlertFire {
                                reason: AlertReason::GapBreach,
                                window: w.window,
                                value_milli: value,
                                threshold_milli,
                            });
                        }
                    } else {
                        self.gap_streak = 0;
                    }
                }
                SloRule::Storm { displaced } => {
                    if w.displaced_jobs >= displaced {
                        fires.push(AlertFire {
                            reason: AlertReason::DisplacementStorm,
                            window: w.window,
                            value_milli: w.displaced_jobs.saturating_mul(1000),
                            threshold_milli: displaced.saturating_mul(1000),
                        });
                    }
                }
                SloRule::Latency {
                    factor_milli,
                    windows,
                } => {
                    let threshold = self
                        .latency_baseline_milli
                        .map(|b| b.saturating_mul(factor_milli) / 1000);
                    let (Some(value), Some(threshold)) = (p99_milli, threshold) else {
                        continue;
                    };
                    if w.placements > 0 && value > threshold {
                        self.latency_streak += 1;
                        if self.latency_streak == windows {
                            fires.push(AlertFire {
                                reason: AlertReason::LatencyRegression,
                                window: w.window,
                                value_milli: value,
                                threshold_milli: threshold,
                            });
                        }
                    } else {
                        self.latency_streak = 0;
                    }
                }
                SloRule::Drops { dropped } => {
                    if w.dropped_jobs >= dropped {
                        fires.push(AlertFire {
                            reason: AlertReason::DropSurge,
                            window: w.window,
                            value_milli: w.dropped_jobs.saturating_mul(1000),
                            threshold_milli: dropped.saturating_mul(1000),
                        });
                    }
                }
            }
        }
        fires
    }
}

/// One fired alert in a [`HealthReport`], with its event-clock timestamp.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct AlertRecord {
    /// When the alert fired (the breaching window's end).
    pub t: TimePoint,
    /// The typed reason.
    pub reason: AlertReason,
    /// Index of the breaching window.
    pub window: u64,
    /// Observed value in fixed-point milli-units.
    pub value_milli: u64,
    /// The crossed threshold in the same units.
    pub threshold_milli: u64,
}

/// What the health plane observed over a run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct HealthReport {
    /// The spec that was evaluated, in canonical grammar form.
    pub spec: String,
    /// Closed windows evaluated.
    pub windows_closed: u64,
    /// Every alert fired, in firing order.
    pub alerts: Vec<AlertRecord>,
    /// Flight-recorder snapshot files written (one per alert, when a
    /// snapshot directory was configured), as display paths.
    pub snapshots: Vec<String>,
    /// Snapshot writes that failed (the run itself is never aborted by a
    /// failed post-mortem dump).
    pub snapshot_errors: Vec<String>,
}

impl HealthReport {
    /// Alerts fired for `reason`.
    #[must_use]
    pub fn count(&self, reason: AlertReason) -> u64 {
        bshm_core::convert::count_u64(self.alerts.iter().filter(|a| a.reason == reason).count())
    }

    /// Whether any alert fired.
    #[must_use]
    pub fn breached(&self) -> bool {
        !self.alerts.is_empty()
    }

    /// One line per alert, for console output.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health: {} window(s), {} alert(s) under `{}`",
            self.windows_closed,
            self.alerts.len(),
            self.spec
        );
        for a in &self.alerts {
            let _ = writeln!(
                out,
                "  [{}] t={} window={} value={}.{:03} threshold={}.{:03}",
                a.reason.as_str(),
                a.t,
                a.window,
                a.value_milli / 1000,
                a.value_milli % 1000,
                a.threshold_milli / 1000,
                a.threshold_milli % 1000,
            );
        }
        out
    }
}

/// Probe middleware that turns any probe chain into a live health plane:
/// rolling windows + SLO engine + flight recorder.
///
/// Every event is forwarded to the wrapped probe unchanged; when an event
/// closes one or more windows, the engine evaluates them and each firing
/// rule becomes a [`TraceEvent::Alert`] recorded into the wrapped probe
/// *before* the triggering event (alerts are departure-side events at the
/// closed window's end, which sorts ≤ the trigger's timestamp).
#[derive(Debug)]
pub struct HealthProbe<P> {
    inner: P,
    windows: RollingWindows,
    engine: SloEngine,
    flight: FlightRecorder,
    snapshot_dir: Option<PathBuf>,
    report: HealthReport,
    finished: bool,
}

impl<P: Probe> HealthProbe<P> {
    /// A health plane evaluating `spec` over `n_types` catalog types,
    /// wrapping `inner`. The rolling history and flight ring use default
    /// bounded capacities.
    #[must_use]
    pub fn new(spec: SloSpec, n_types: usize, inner: P) -> Self {
        let report = HealthReport {
            spec: spec.render(),
            ..HealthReport::default()
        };
        HealthProbe {
            inner,
            windows: RollingWindows::new(spec.width, 64, n_types),
            engine: SloEngine::new(spec),
            flight: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY),
            snapshot_dir: None,
            report,
            finished: false,
        }
    }

    /// Enables flight-recorder snapshots: each alert dumps the ring to
    /// `dir/alert-NNN-<reason>.jsonl` (atomically).
    #[must_use]
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Overrides the flight-recorder capacity.
    ///
    /// # Panics
    /// If `capacity` is zero.
    #[must_use]
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight = FlightRecorder::new(capacity);
        self
    }

    /// The health report so far.
    #[must_use]
    pub fn report(&self) -> &HealthReport {
        &self.report
    }

    /// The rolling-window fold (for dashboards).
    #[must_use]
    pub fn windows(&self) -> &RollingWindows {
        &self.windows
    }

    /// The flight recorder ring.
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Unwraps into the inner probe and the final report. Flushes the
    /// in-progress window first if `finish` has not run yet.
    #[must_use]
    pub fn into_parts(mut self) -> (P, HealthReport) {
        self.finish();
        (self.inner, self.report)
    }

    fn close_windows(&mut self, closed: Vec<WindowStats>) {
        for w in closed {
            self.report.windows_closed += 1;
            for fire in self.engine.evaluate(&w) {
                self.emit(w.end, fire);
            }
        }
    }

    fn emit(&mut self, t: TimePoint, fire: AlertFire) {
        let alert = TraceEvent::Alert {
            t,
            reason: fire.reason,
            window: fire.window,
            value_milli: fire.value_milli,
            threshold_milli: fire.threshold_milli,
        };
        self.windows.note_alert();
        self.flight.push(&alert);
        self.report.alerts.push(AlertRecord {
            t,
            reason: fire.reason,
            window: fire.window,
            value_milli: fire.value_milli,
            threshold_milli: fire.threshold_milli,
        });
        if let Some(dir) = &self.snapshot_dir {
            let name = format!(
                "alert-{:03}-{}.jsonl",
                self.report.alerts.len(),
                fire.reason.as_str()
            );
            let path = dir.join(name);
            match self.flight.dump(&path) {
                Ok(()) => self.report.snapshots.push(path.display().to_string()),
                Err(e) => self.report.snapshot_errors.push(e),
            }
        }
        self.inner.record(&alert);
    }
}

impl<P: Probe> Probe for HealthProbe<P> {
    fn record(&mut self, event: &TraceEvent) {
        let closed = self.windows.observe(event);
        self.close_windows(closed);
        self.flight.push(event);
        self.inner.record(event);
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            if let Some(last) = self.windows.flush() {
                self.close_windows(vec![last]);
            }
        }
        self.inner.finish();
    }
}

/// Writes a health report as JSON to `path` via the crash-safe sink.
///
/// # Errors
/// Propagates serialization and filesystem errors.
pub fn write_health_report(path: &Path, report: &HealthReport) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| format!("serializing health report: {e}"))?;
    crate::sink::atomic_write(path, &(json + "\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Collector;
    use bshm_core::job::JobId;
    use bshm_core::machine::TypeIndex;
    use bshm_core::schedule::MachineId;

    fn gap_sample(t: u64, lower_bound: u64, cost: u64) -> TraceEvent {
        TraceEvent::GapSample {
            t,
            lower_bound,
            cost,
        }
    }

    #[test]
    fn spec_grammar_round_trips() {
        let spec = SloSpec::parse(DEFAULT_SLO_SPEC).unwrap();
        assert_eq!(spec.width, 64);
        assert_eq!(spec.rules.len(), 3);
        assert_eq!(spec.render(), DEFAULT_SLO_SPEC);
        let spec = SloSpec::parse("window:10;latency:4000:3").unwrap();
        assert_eq!(
            spec.rules,
            [SloRule::Latency {
                factor_milli: 4000,
                windows: 3
            }]
        );
        assert!(SloSpec::parse("window:0").is_err());
        assert!(SloSpec::parse("gap:oops:2").is_err());
        assert!(SloSpec::parse("storm:0").is_err());
        assert!(SloSpec::parse("nonsense").is_err());
        assert_eq!(SloSpec::default().render(), DEFAULT_SLO_SPEC);
    }

    #[test]
    fn gap_rule_requires_a_sustained_streak() {
        let spec = SloSpec::parse("window:10;gap:1500:2").unwrap();
        let mut hp = HealthProbe::new(spec, 1, Collector::default());
        // Ratio 2.0 in windows 0 and 1: the streak completes on window 1.
        hp.record(&gap_sample(1, 10, 20));
        hp.record(&gap_sample(11, 10, 20));
        hp.record(&gap_sample(21, 10, 10)); // ratio back to 1.0
        hp.record(&gap_sample(31, 10, 20)); // breach again — streak restarts
        hp.finish();
        let report = hp.report().clone();
        assert_eq!(report.count(AlertReason::GapBreach), 1);
        let a = &report.alerts[0];
        assert_eq!((a.window, a.t), (1, 20));
        assert_eq!((a.value_milli, a.threshold_milli), (2000, 1500));
        // The alert event landed in the wrapped probe, before the trigger.
        let (inner, _) = hp.into_parts();
        let kinds: Vec<&str> = inner.events.iter().map(TraceEvent::kind).collect();
        assert_eq!(
            kinds,
            ["GapSample", "GapSample", "Alert", "GapSample", "GapSample"]
        );
        match &inner.events[2] {
            TraceEvent::Alert { t, reason, .. } => {
                assert_eq!(*t, 20);
                assert_eq!(*reason, AlertReason::GapBreach);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn storm_and_drop_rules_fire_per_window() {
        let spec = SloSpec::parse("window:10;storm:2;drops:1").unwrap();
        let mut hp = HealthProbe::new(spec, 1, Collector::default());
        hp.record(&TraceEvent::MachineCrash {
            t: 1,
            machine: MachineId(0),
            machine_type: TypeIndex(0),
            displaced: 3,
        });
        hp.record(&TraceEvent::JobDropped {
            t: 2,
            job: JobId(9),
            reason: "no capacity".into(),
        });
        hp.finish();
        let report = hp.report();
        assert_eq!(report.count(AlertReason::DisplacementStorm), 1);
        assert_eq!(report.count(AlertReason::DropSurge), 1);
        assert_eq!(report.alerts[0].value_milli, 3000);
        assert!(report.breached());
        assert!(report.summary().contains("displacement-storm"));
    }

    #[test]
    fn latency_rule_compares_against_run_start_baseline() {
        let spec = SloSpec::parse("window:10;latency:2000:1").unwrap();
        let mut hp = HealthProbe::new(spec, 1, Collector::default());
        let place = |t: u64, ns: u64| TraceEvent::Placement {
            t,
            job: JobId(t as u32),
            machine: MachineId(0),
            machine_type: TypeIndex(0),
            opened: false,
            decision_ns: ns,
            load: 1,
            capacity: 4,
        };
        hp.record(&place(1, 100)); // baseline window
        hp.record(&place(11, 100)); // steady
        hp.record(&place(21, 100_000)); // regression ≫ 2× baseline
        hp.finish();
        let report = hp.report();
        assert_eq!(report.count(AlertReason::LatencyRegression), 1);
        let a = &report.alerts[0];
        assert_eq!(a.window, 2);
        assert!(a.value_milli > a.threshold_milli);
    }

    #[test]
    fn clean_runs_trip_nothing_under_the_default_spec() {
        let mut hp = HealthProbe::new(SloSpec::default(), 1, Collector::default());
        for t in 0..200u64 {
            hp.record(&TraceEvent::Arrival {
                t,
                job: JobId(t as u32),
                size: 1,
            });
            hp.record(&gap_sample(t, 100, 150));
        }
        hp.finish();
        assert!(!hp.report().breached());
        assert!(hp.report().windows_closed >= 3);
    }

    #[test]
    fn alerts_snapshot_the_flight_recorder() {
        let dir = std::env::temp_dir().join("bshm-slo-tests-snapshots");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = SloSpec::parse("window:10;storm:1").unwrap();
        let mut hp = HealthProbe::new(spec, 1, Collector::default())
            .with_snapshot_dir(&dir)
            .with_flight_capacity(16);
        hp.record(&TraceEvent::MachineCrash {
            t: 3,
            machine: MachineId(0),
            machine_type: TypeIndex(0),
            displaced: 2,
        });
        hp.finish();
        let (_, report) = hp.into_parts();
        assert_eq!(report.snapshots.len(), 1);
        assert!(report.snapshot_errors.is_empty());
        let text = std::fs::read_to_string(&report.snapshots[0]).unwrap();
        let events = crate::replay::parse_jsonl(&text).unwrap();
        // The snapshot holds the crash that led up to the alert, plus the
        // alert itself.
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::MachineCrash { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Alert { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_report_serializes() {
        let spec = SloSpec::parse("window:10;drops:1").unwrap();
        let mut hp = HealthProbe::new(spec, 1, Collector::default());
        hp.record(&TraceEvent::JobDropped {
            t: 2,
            job: JobId(1),
            reason: "x".into(),
        });
        let (_, report) = hp.into_parts();
        let path = std::env::temp_dir().join("bshm-slo-tests-report.json");
        write_health_report(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // JSON uses the variant-name tag, like the trace schema.
        assert!(text.contains("DropSurge"));
        let _ = std::fs::remove_file(&path);
    }
}
