//! Trace replay: parse a JSONL event log, rebuild the busy-machine
//! timeline, and cross-check it against the schedule-derived
//! [`bshm_core::analysis::machine_timeline`]. Also the inverse direction:
//! [`synthesize`] the canonical event stream for a finished (offline)
//! schedule, so offline and online runs produce comparable traces.

use crate::event::TraceEvent;
use crate::probe::Probe;
use bshm_core::analysis::MachineTimeline;
use bshm_core::instance::Instance;
use bshm_core::job::JobId;
use bshm_core::machine::TypeIndex;
use bshm_core::ops::DecisionLog;
use bshm_core::schedule::{MachineId, Schedule};
use bshm_core::time::TimePoint;
use std::collections::{BTreeMap, HashMap};
use std::io::BufRead;

/// Parses a JSONL trace (one event per line; blank lines ignored).
///
/// # Errors
/// Reports the first malformed line with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let e: TraceEvent =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
        events.push(e);
    }
    Ok(events)
}

/// A streaming JSONL trace reader: yields one event at a time without ever
/// holding the whole trace in memory. This is what `watch`/`health` use to
/// follow arbitrarily long (or still-growing) traces; [`parse_jsonl`]
/// remains the whole-buffer convenience for small recorded files.
///
/// Iteration yields `Err` once for the first malformed line (with its
/// 1-based line number) and then stops — the same prefix semantics a
/// salvage pass has, minus the recovery.
#[derive(Debug)]
pub struct EventStream<R> {
    reader: R,
    line: u64,
    buf: String,
    done: bool,
}

impl<R: BufRead> EventStream<R> {
    /// Streams events out of `reader`.
    #[must_use]
    pub fn new(reader: R) -> Self {
        EventStream {
            reader,
            line: 0,
            buf: String::new(),
            done: false,
        }
    }

    /// 1-based number of the last line read (0 before the first).
    #[must_use]
    pub fn line(&self) -> u64 {
        self.line
    }
}

impl<R: BufRead> Iterator for EventStream<R> {
    type Item = Result<TraceEvent, String>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line += 1;
                    let line = self.buf.trim();
                    if line.is_empty() {
                        continue;
                    }
                    return Some(match serde_json::from_str::<TraceEvent>(line) {
                        Ok(e) => Ok(e),
                        Err(e) => {
                            self.done = true;
                            Err(format!("trace line {}: {e}", self.line))
                        }
                    });
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(format!("trace line {}: read: {e}", self.line + 1)));
                }
            }
        }
        None
    }
}

/// Opens `path` (falling back to its `.partial` twin, like salvage does)
/// as a streaming event iterator.
///
/// # Errors
/// When neither the file nor its `.partial` twin can be opened.
pub fn stream_jsonl_file(
    path: &std::path::Path,
) -> Result<EventStream<std::io::BufReader<std::fs::File>>, String> {
    let file = std::fs::File::open(path).or_else(|first| {
        std::fs::File::open(crate::sink::partial_path(path))
            .map_err(|_| format!("open {}: {first}", path.display()))
    })?;
    Ok(EventStream::new(std::io::BufReader::new(file)))
}

/// A per-type busy-machine step function rebuilt from a trace's
/// `MachineOpen`/`MachineClose` events.
///
/// Same shape as [`MachineTimeline`], except rows align with grid points:
/// `busy[i]` holds on `[grid[i], grid[i+1])` (and `busy[last]` from the
/// last transition on — all zeros for a complete trace, since every
/// machine closes when its last job departs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayedTimeline {
    /// Times at which some machine opened or closed.
    pub grid: Vec<TimePoint>,
    /// `grid.len()` rows: busy machines of each type from that time on.
    pub busy: Vec<Vec<u32>>,
}

impl ReplayedTimeline {
    /// Busy machines of each type at time `t` (zeros before the first
    /// transition).
    #[must_use]
    pub fn at(&self, t: TimePoint) -> Vec<u32> {
        let types = self.busy.first().map_or(0, Vec::len);
        if self.grid.is_empty() || t < self.grid[0] {
            return vec![0; types];
        }
        let i = self.grid.partition_point(|&g| g <= t) - 1;
        self.busy[i].clone()
    }
}

/// The number of catalog types a trace references (1 + the highest
/// machine-type index seen on any event; 0 for a type-free trace).
#[must_use]
pub fn infer_n_types(events: &[TraceEvent]) -> usize {
    events.iter().map(event_type_bound).max().unwrap_or(0)
}

/// The catalog width implied by one event: 1 + its machine-type index, or
/// 0 for type-free events. `max`-folding this over an [`EventStream`] is
/// the streaming counterpart of [`infer_n_types`] (used by `bshm health`
/// and `bshm watch`, which never hold the whole trace in memory).
#[must_use]
pub fn event_type_bound(e: &TraceEvent) -> usize {
    match *e {
        TraceEvent::MachineOpen { machine_type, .. }
        | TraceEvent::MachineClose { machine_type, .. }
        | TraceEvent::Placement { machine_type, .. }
        | TraceEvent::CostAccrual { machine_type, .. }
        | TraceEvent::MachineCrash { machine_type, .. }
        | TraceEvent::JobRecovery { machine_type, .. } => machine_type.0 + 1,
        // Exhaustive on purpose: a new variant must decide its place
        // here or fail to compile (see drift/trace-schema).
        TraceEvent::Arrival { .. }
        | TraceEvent::Departure { .. }
        | TraceEvent::JobDropped { .. }
        | TraceEvent::Decision { .. }
        | TraceEvent::GapSample { .. }
        | TraceEvent::Alert { .. }
        | TraceEvent::TenantLifecycle { .. }
        | TraceEvent::Degradation { .. } => 0,
    }
}

/// Folds a recorded event stream back into aggregated [`Metrics`] — the
/// same aggregates a live [`crate::Recorder`] would have produced. This is
/// what turns a trace JSONL file into an exposition snapshot after the
/// fact.
#[must_use]
pub fn metrics_from_events(
    algorithm: impl Into<String>,
    events: &[TraceEvent],
    n_types: usize,
) -> crate::Metrics {
    let mut metrics = crate::Metrics::new(algorithm, n_types);
    let mut busy_now = vec![0u32; n_types];
    for e in events {
        metrics.update(e, &mut busy_now);
    }
    metrics
}

/// Rebuilds the busy-machine timeline from a trace.
///
/// Events must be in the order the probe emitted them (time-sorted,
/// departure-side first at ties); only open/close events are consulted.
/// `n_types` is the catalog size (machine type indices must be below it).
#[must_use]
pub fn replay_timeline(events: &[TraceEvent], n_types: usize) -> ReplayedTimeline {
    let mut grid: Vec<TimePoint> = Vec::new();
    let mut busy: Vec<Vec<u32>> = Vec::new();
    let mut cur = vec![0u32; n_types];
    for e in events {
        let (t, ty, delta) = match *e {
            TraceEvent::MachineOpen {
                t, machine_type, ..
            } => (t, machine_type.0, 1i64),
            TraceEvent::MachineClose {
                t, machine_type, ..
            } => (t, machine_type.0, -1),
            // Exhaustive on purpose: only open/close move the gauge, and a
            // new variant must opt out here explicitly. A crash's busy span
            // is closed by its own MachineClose, so MachineCrash (and the
            // recovery/drop events) leave the gauge alone.
            TraceEvent::Arrival { .. }
            | TraceEvent::Placement { .. }
            | TraceEvent::Departure { .. }
            | TraceEvent::CostAccrual { .. }
            | TraceEvent::MachineCrash { .. }
            | TraceEvent::JobRecovery { .. }
            | TraceEvent::JobDropped { .. }
            | TraceEvent::Decision { .. }
            | TraceEvent::GapSample { .. }
            | TraceEvent::Alert { .. }
            | TraceEvent::TenantLifecycle { .. }
            | TraceEvent::Degradation { .. } => continue,
        };
        if ty < n_types {
            cur[ty] = u32::try_from(i64::from(cur[ty]) + delta).unwrap_or(0);
        }
        if grid.last() == Some(&t) {
            // grid and busy grow in lockstep, so a matching last grid point
            // implies a last busy row; if-let keeps this panic-free.
            if let Some(row) = busy.last_mut() {
                *row = cur.clone();
            }
        } else {
            grid.push(t);
            busy.push(cur.clone());
        }
    }
    ReplayedTimeline { grid, busy }
}

/// Verifies that a replayed timeline agrees *exactly* with the
/// schedule-derived reference at every point of either grid.
///
/// Both are piecewise-constant with transitions only at job
/// arrival/departure times, so agreeing at all grid points of both sides
/// means the step functions are identical.
///
/// # Errors
/// Describes the first disagreeing time point.
pub fn cross_check(replay: &ReplayedTimeline, reference: &MachineTimeline) -> Result<(), String> {
    let ref_types = reference.busy.first().map_or(0, Vec::len);
    let rep_types = replay.busy.first().map_or(0, Vec::len);
    if !replay.busy.is_empty() && !reference.busy.is_empty() && ref_types != rep_types {
        return Err(format!(
            "type count mismatch: trace has {rep_types}, schedule timeline has {ref_types}"
        ));
    }
    let widen = |v: Vec<u32>, n: usize| {
        let mut v = v;
        v.resize(n.max(v.len()), 0);
        v
    };
    let n = ref_types.max(rep_types);
    for (i, &t) in reference.grid.iter().enumerate() {
        // The last grid point opens no segment; the reference is zero there.
        let want = if i + 1 < reference.grid.len() {
            reference.busy[i].clone()
        } else {
            vec![0; ref_types]
        };
        let got = replay.at(t);
        if widen(got.clone(), n) != widen(want.clone(), n) {
            return Err(format!(
                "at t={t}: trace says {got:?}, schedule timeline says {want:?}"
            ));
        }
    }
    for &t in &replay.grid {
        let got = replay.at(t);
        let want = reference.at(t);
        if widen(got.clone(), n) != widen(want.clone(), n) {
            return Err(format!(
                "at t={t}: trace says {got:?}, schedule timeline says {want:?}"
            ));
        }
    }
    Ok(())
}

/// Emits the canonical event stream of a *finished* schedule into `probe`:
/// what the probed driver would have emitted, had this exact assignment
/// been produced online (with `decision_ns` = 0, as no live decisions were
/// timed).
///
/// Jobs the schedule leaves unassigned are skipped.
pub fn synthesize<P: Probe + ?Sized>(schedule: &Schedule, instance: &Instance, probe: &mut P) {
    synthesize_inner(schedule, instance, None, probe);
}

/// [`synthesize`] plus the decision x-ray: after each `Placement`, emits
/// the matching `TraceEvent::Decision` carrying the per-job operation
/// counts an offline kernel recorded into `log` while solving. `pool_size`
/// is the number of machines that had already received a placement when
/// the job's turn came (the offline analogue of the open pool); jobs the
/// log never saw get a zeroed counter.
pub fn synthesize_xray<P: Probe + ?Sized>(
    schedule: &Schedule,
    instance: &Instance,
    log: &mut DecisionLog,
    probe: &mut P,
) {
    synthesize_inner(schedule, instance, Some(log), probe);
}

fn synthesize_inner<P: Probe + ?Sized>(
    schedule: &Schedule,
    instance: &Instance,
    mut log: Option<&mut DecisionLog>,
    probe: &mut P,
) {
    if !probe.enabled() {
        return;
    }
    let jobs = instance.jobs();
    // Job → (machine, first-ever job on that machine?).
    let mut location: HashMap<JobId, (MachineId, bool)> = HashMap::new();
    for (mi, machine) in schedule.machines().iter().enumerate() {
        let m = MachineId(bshm_core::convert::index_u32(mi));
        for (k, &j) in machine.jobs.iter().enumerate() {
            location.insert(j, (m, k == 0));
        }
    }
    // Same event list and ordering as the driver: departures first at ties.
    let mut events: Vec<(TimePoint, bool, usize)> = Vec::with_capacity(jobs.len() * 2);
    for (idx, j) in jobs.iter().enumerate() {
        if location.contains_key(&j.id) {
            events.push((j.arrival, true, idx));
            events.push((j.departure, false, idx));
        }
    }
    events.sort_unstable_by_key(|&(t, is_arrival, idx)| (t, is_arrival, jobs[idx].id));

    let n_machines = schedule.machines().len();
    let mut active = vec![0u32; n_machines];
    let mut load = vec![0u64; n_machines];
    let mut opened_at = vec![0 as TimePoint; n_machines];
    let mut ever_placed = vec![false; n_machines];
    let mut pool_size = 0u64;
    for (t, is_arrival, idx) in events {
        let job = &jobs[idx];
        let (m, first) = location[&job.id];
        let mi = m.0 as usize;
        let ty = schedule.machines()[mi].machine_type;
        let mt = instance.catalog().get(ty);
        if is_arrival {
            probe.on_arrival(t, job.id, job.size);
            if active[mi] == 0 {
                opened_at[mi] = t;
                probe.on_machine_open(t, m, ty);
            }
            active[mi] += 1;
            load[mi] += job.size;
            probe.on_placement(t, job.id, m, ty, first, 0, load[mi], mt.capacity);
            if let Some(log) = log.as_deref_mut() {
                let tr = log.take(job.id).unwrap_or_default();
                let fallback = if first {
                    bshm_core::ops::PlaceReason::Opened
                } else {
                    bshm_core::ops::PlaceReason::Reused
                };
                probe.record(&TraceEvent::Decision {
                    t,
                    job: job.id,
                    machine: m,
                    placed: tr.placed.map_or(fallback, |(_, how)| how),
                    pool_size,
                    candidates: tr.candidates,
                    ops: tr.counter,
                });
            }
            if !ever_placed[mi] {
                ever_placed[mi] = true;
                pool_size += 1;
            }
        } else {
            probe.on_departure(t, job.id, m);
            active[mi] -= 1;
            load[mi] -= job.size;
            if active[mi] == 0 {
                probe.on_cost_accrual(t, m, ty, t - opened_at[mi], mt.rate);
                probe.on_machine_close(t, m, ty, opened_at[mi]);
            }
        }
    }
    probe.finish();
}

/// One step of a machine's utilization timeline: the load and occupancy
/// right after a transition at `t`, holding until the next point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UsagePoint {
    /// Time of the transition.
    pub t: TimePoint,
    /// Machine load after the transition.
    pub load: u64,
    /// Active jobs after the transition.
    pub active: u32,
}

/// One machine's utilization/occupancy timeline derived from a trace's
/// `Placement`/`Departure` (and fault) events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineUsage {
    /// The machine.
    pub machine: MachineId,
    /// Its catalog type (from its first `Placement`).
    pub machine_type: TypeIndex,
    /// Its capacity (from its first `Placement`; 0 if never seen).
    pub capacity: u64,
    /// Load/occupancy steps in time order, coalesced per instant.
    pub points: Vec<UsagePoint>,
}

impl MachineUsage {
    /// Total time the machine held at least one active job.
    #[must_use]
    pub fn busy_time(&self) -> u64 {
        self.windows().filter(|w| w.0.active > 0).map(|w| w.1).sum()
    }

    /// `∫ load dt` over the timeline.
    #[must_use]
    pub fn load_integral(&self) -> u128 {
        self.windows()
            .map(|w| u128::from(w.0.load) * u128::from(w.1))
            .sum()
    }

    /// Mean fill (`load / capacity`) over busy time; `None` for a machine
    /// that was never busy or has no recorded capacity.
    #[must_use]
    pub fn mean_utilization(&self) -> Option<f64> {
        let busy = self.busy_time();
        (busy > 0 && self.capacity > 0)
            .then(|| self.load_integral() as f64 / (self.capacity as f64 * busy as f64))
    }

    fn windows(&self) -> impl Iterator<Item = (&UsagePoint, u64)> {
        self.points
            .windows(2)
            .map(|w| (&w[0], w[1].t.saturating_sub(w[0].t)))
    }
}

/// Derives every machine's utilization/occupancy timeline from a trace.
///
/// Walks `Placement`/`Departure` events (job sizes from `Arrival`s),
/// handles crash displacement (`MachineCrash` empties the machine;
/// `JobRecovery` moves load to the recovery machine), and returns one
/// [`MachineUsage`] per machine seen, sorted by machine id.
#[must_use]
pub fn machine_utilization(events: &[TraceEvent]) -> Vec<MachineUsage> {
    struct State {
        usage: MachineUsage,
        load: u64,
        active: u32,
    }
    let mut sizes: HashMap<JobId, u64> = HashMap::new();
    let mut machines: BTreeMap<MachineId, State> = BTreeMap::new();
    let push = |machines: &mut BTreeMap<MachineId, State>,
                m: MachineId,
                ty: Option<(TypeIndex, u64)>,
                t: TimePoint,
                dload: i64,
                dactive: i64| {
        let st = machines.entry(m).or_insert_with(|| State {
            usage: MachineUsage {
                machine: m,
                machine_type: TypeIndex(0),
                capacity: 0,
                points: Vec::new(),
            },
            load: 0,
            active: 0,
        });
        if let Some((ty, cap)) = ty {
            if st.usage.capacity == 0 {
                st.usage.machine_type = ty;
                st.usage.capacity = cap;
            }
        }
        st.load = st.load.saturating_add_signed(dload);
        st.active = u32::try_from(i64::from(st.active) + dactive).unwrap_or(0);
        let point = UsagePoint {
            t,
            load: st.load,
            active: st.active,
        };
        match st.usage.points.last_mut() {
            Some(last) if last.t == t => *last = point,
            _ => st.usage.points.push(point),
        }
    };
    for e in events {
        match *e {
            TraceEvent::Arrival { job, size, .. } => {
                sizes.insert(job, size);
            }
            TraceEvent::Placement {
                t,
                job,
                machine,
                machine_type,
                capacity,
                ..
            } => {
                let size = sizes.get(&job).copied().unwrap_or(0);
                push(
                    &mut machines,
                    machine,
                    Some((machine_type, capacity)),
                    t,
                    i64::try_from(size).unwrap_or(i64::MAX),
                    1,
                );
            }
            TraceEvent::Departure { t, job, machine } => {
                let size = sizes.get(&job).copied().unwrap_or(0);
                push(
                    &mut machines,
                    machine,
                    None,
                    t,
                    -i64::try_from(size).unwrap_or(i64::MAX),
                    -1,
                );
            }
            TraceEvent::MachineCrash { t, machine, .. } => {
                // Displaced jobs leave the machine at the crash instant;
                // JobRecovery events re-add them elsewhere.
                let cleared = machines.get(&machine).map(|st| (st.load, st.active));
                if let Some((dl, da)) = cleared {
                    push(
                        &mut machines,
                        machine,
                        None,
                        t,
                        -i64::try_from(dl).unwrap_or(i64::MAX),
                        -i64::from(da),
                    );
                }
            }
            TraceEvent::JobRecovery {
                t,
                job,
                to,
                machine_type,
                ..
            } => {
                let size = sizes.get(&job).copied().unwrap_or(0);
                push(
                    &mut machines,
                    to,
                    Some((machine_type, 0)),
                    t,
                    i64::try_from(size).unwrap_or(i64::MAX),
                    1,
                );
            }
            TraceEvent::MachineOpen { .. }
            | TraceEvent::CostAccrual { .. }
            | TraceEvent::MachineClose { .. }
            | TraceEvent::JobDropped { .. }
            | TraceEvent::Decision { .. }
            | TraceEvent::GapSample { .. }
            | TraceEvent::Alert { .. }
            | TraceEvent::TenantLifecycle { .. }
            | TraceEvent::Degradation { .. } => {}
        }
    }
    let mut out: Vec<MachineUsage> = machines.into_values().map(|s| s.usage).collect();
    out.sort_by_key(|u| u.machine);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Collector;
    use bshm_core::analysis::machine_timeline;
    use bshm_core::job::Job;
    use bshm_core::machine::{Catalog, MachineType, TypeIndex};
    use bshm_core::{schedule_cost, validate_schedule};

    fn setup() -> (Instance, Schedule) {
        let catalog = Catalog::new(vec![MachineType::new(4, 1), MachineType::new(16, 2)]).unwrap();
        let jobs = vec![
            Job::new(0, 2, 0, 10),
            Job::new(1, 2, 5, 15),
            Job::new(2, 10, 0, 20),
            Job::new(3, 4, 30, 40), // reopens the small machine after a gap
        ];
        let instance = Instance::new(jobs, catalog).unwrap();
        let mut s = Schedule::new();
        let m0 = s.add_machine(TypeIndex(0), "small");
        s.assign(m0, JobId(0));
        s.assign(m0, JobId(1));
        s.assign(m0, JobId(3));
        let m1 = s.add_machine(TypeIndex(1), "big");
        s.assign(m1, JobId(2));
        (instance, s)
    }

    #[test]
    fn synthesized_stream_is_ordered_and_complete() {
        let (inst, s) = setup();
        assert_eq!(validate_schedule(&s, &inst), Ok(()));
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        // 4 arrivals + 4 placements + 4 departures + 3 opens + 3 closes +
        // 3 accruals (small machine opens twice, big once).
        assert_eq!(c.events.len(), 21);
        let times: Vec<TimePoint> = c.events.iter().map(TraceEvent::time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        // Departure-side events precede arrival-side ones at equal times.
        for w in c.events.windows(2) {
            if w[0].time() == w[1].time() {
                assert!(
                    w[0].is_departure_side() >= w[1].is_departure_side(),
                    "{w:?}"
                );
            }
        }
    }

    #[test]
    fn traced_cost_matches_schedule_cost() {
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let traced: u64 = c
            .events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::CostAccrual { busy, rate, .. } => Some(busy * rate),
                _ => None,
            })
            .sum();
        assert_eq!(u128::from(traced), schedule_cost(&s, &inst));
    }

    #[test]
    fn replay_matches_machine_timeline() {
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let replay = replay_timeline(&c.events, inst.catalog().len());
        let reference = machine_timeline(&s, &inst);
        cross_check(&replay, &reference).unwrap();
        // Spot checks, including the idle gap on the small machine.
        assert_eq!(replay.at(0), vec![1, 1]);
        assert_eq!(replay.at(17), vec![0, 1]);
        assert_eq!(replay.at(25), vec![0, 0]);
        assert_eq!(replay.at(35), vec![1, 0]);
        assert_eq!(replay.at(40), vec![0, 0]);
    }

    #[test]
    fn cross_check_catches_corruption() {
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        // Drop one close event: the replayed gauge stays up forever.
        let mut broken = c.events.clone();
        let pos = broken
            .iter()
            .position(|e| matches!(e, TraceEvent::MachineClose { .. }))
            .unwrap();
        broken.remove(pos);
        let replay = replay_timeline(&broken, inst.catalog().len());
        let reference = machine_timeline(&s, &inst);
        assert!(cross_check(&replay, &reference).is_err());
    }

    #[test]
    fn metrics_from_events_matches_live_recorder() {
        let (inst, s) = setup();
        let mut rec = crate::Recorder::new("offline", inst.catalog().len());
        synthesize(&s, &inst, &mut rec);
        let live = rec.into_metrics().unwrap();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        assert_eq!(infer_n_types(&c.events), inst.catalog().len());
        let folded = metrics_from_events("offline", &c.events, inst.catalog().len());
        assert_eq!(folded.arrivals, live.arrivals);
        assert_eq!(folded.placements, live.placements);
        assert_eq!(folded.traced_cost, live.traced_cost);
        assert_eq!(folded.cost_by_type, live.cost_by_type);
        assert_eq!(folded.open_peak_by_type, live.open_peak_by_type);
        assert_eq!(folded.gauge_timeline, live.gauge_timeline);
        assert_eq!(folded.utilization_hist, live.utilization_hist);
        assert_eq!(folded.decision_ns_hist, live.decision_ns_hist);
        assert_eq!(folded.decision_ns_sum, live.decision_ns_sum);
    }

    #[test]
    fn synthesize_xray_emits_decisions() {
        use bshm_core::ops::{OpProbe, PlaceReason, RejectReason};
        let (inst, s) = setup();
        let mut log = DecisionLog::new();
        // Pretend a kernel recorded scan work for jobs 0 and 2.
        log.begin(JobId(0));
        log.scanned(MachineId(0));
        log.compared(1);
        log.committed(MachineId(0), PlaceReason::Opened);
        log.begin(JobId(2));
        log.scanned(MachineId(0));
        log.compared(1);
        log.rejected(MachineId(0), RejectReason::Capacity);
        log.committed(MachineId(1), PlaceReason::Opened);
        let mut c = Collector::default();
        synthesize_xray(&s, &inst, &mut log, &mut c);
        let n_decisions = c
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Decision { .. }))
            .count();
        assert_eq!(n_decisions, 4);
        // Each Decision immediately follows its job's Placement.
        for (i, e) in c.events.iter().enumerate() {
            if let TraceEvent::Decision { job, machine, .. } = e {
                match &c.events[i - 1] {
                    TraceEvent::Placement {
                        job: pj,
                        machine: pm,
                        ..
                    } => {
                        assert_eq!(pj, job);
                        assert_eq!(pm, machine);
                    }
                    other => panic!("decision not after placement: {other:?}"),
                }
            }
        }
        // Logged jobs carry their counters; unlogged ones fold to zero.
        let m = metrics_from_events("x", &c.events, inst.catalog().len());
        assert_eq!(m.ops.decisions, 2);
        assert_eq!(m.ops.machines_scanned, 2);
        assert_eq!(m.ops.rejected_capacity, 1);
        assert_eq!(m.ops_hist.iter().sum::<u64>(), 4);
        // pool_size counts machines already placed-on when the job's turn
        // came: job 0 → 0, job 2 → 1, jobs 1 and 3 → 2.
        let pools: Vec<u64> = c
            .events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::Decision { pool_size, .. } => Some(pool_size),
                _ => None,
            })
            .collect();
        assert_eq!(pools, vec![0, 1, 2, 2]);
        // The decision events do not disturb timeline replay, and the
        // plain synthesize stream stays decision-free.
        let replay = replay_timeline(&c.events, inst.catalog().len());
        cross_check(&replay, &machine_timeline(&s, &inst)).unwrap();
        let mut plain = Collector::default();
        synthesize(&s, &inst, &mut plain);
        assert_eq!(plain.events.len(), 21);
    }

    #[test]
    fn machine_utilization_derives_per_machine_timelines() {
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let usage = machine_utilization(&c.events);
        assert_eq!(usage.len(), 2);
        let small = &usage[0];
        assert_eq!(small.machine, MachineId(0));
        assert_eq!(small.machine_type, TypeIndex(0));
        assert_eq!(small.capacity, 4);
        assert_eq!(
            small.points,
            vec![
                UsagePoint {
                    t: 0,
                    load: 2,
                    active: 1
                },
                UsagePoint {
                    t: 5,
                    load: 4,
                    active: 2
                },
                UsagePoint {
                    t: 10,
                    load: 2,
                    active: 1
                },
                UsagePoint {
                    t: 15,
                    load: 0,
                    active: 0
                },
                UsagePoint {
                    t: 30,
                    load: 4,
                    active: 1
                },
                UsagePoint {
                    t: 40,
                    load: 0,
                    active: 0
                },
            ]
        );
        assert_eq!(small.busy_time(), 25);
        assert_eq!(small.load_integral(), 80);
        let u = small.mean_utilization().unwrap();
        assert!((u - 0.8).abs() < 1e-9, "{u}");
        let big = &usage[1];
        assert_eq!(big.machine_type, TypeIndex(1));
        assert_eq!(big.capacity, 16);
        assert_eq!(big.busy_time(), 20);
        assert_eq!(big.load_integral(), 200);
        // A never-busy machine reports no mean utilization.
        assert_eq!(machine_utilization(&[]).len(), 0);
    }

    #[test]
    fn jsonl_round_trip() {
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let text: String = c
            .events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, c.events);
        assert!(parse_jsonl("{not json}").is_err());
        assert!(parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn event_stream_matches_whole_buffer_parse() {
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let text: String = c
            .events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let streamed: Result<Vec<TraceEvent>, String> = EventStream::new(text.as_bytes()).collect();
        assert_eq!(streamed.unwrap(), parse_jsonl(&text).unwrap());
        // Blank lines are skipped, like parse_jsonl.
        let padded = format!("\n{text}\n\n");
        let streamed: Vec<TraceEvent> = EventStream::new(padded.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed.len(), c.events.len());
    }

    #[test]
    fn event_stream_stops_at_first_malformed_line() {
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let mut text: String = c.events[..3]
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        text.push_str("{torn");
        let mut stream = EventStream::new(text.as_bytes());
        let mut ok = 0;
        let mut err = None;
        for item in &mut stream {
            match item {
                Ok(_) => ok += 1,
                Err(e) => err = Some(e),
            }
        }
        assert_eq!(ok, 3);
        assert!(err.unwrap().contains("trace line 4"), "line number lost");
        // After the error the iterator is fused.
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_jsonl_file_falls_back_to_partial() {
        let dir = std::env::temp_dir().join("bshm-replay-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let _ = std::fs::remove_file(&path);
        let partial = crate::sink::partial_path(&path);
        let (inst, s) = setup();
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let text: String = c
            .events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        std::fs::write(&partial, &text).unwrap();
        // Only the .partial twin exists: the stream still opens.
        let streamed: Vec<TraceEvent> = stream_jsonl_file(&path)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, c.events);
        let _ = std::fs::remove_file(&partial);
        assert!(stream_jsonl_file(&path).is_err());
    }
}
