//! The structured trace-event vocabulary.

use bshm_core::job::JobId;
use bshm_core::machine::TypeIndex;
use bshm_core::ops::{OpCounter, PlaceReason, RejectedCandidate};
use bshm_core::schedule::MachineId;
use bshm_core::time::TimePoint;
use serde::{Deserialize, Serialize};

/// Why an SLO alert fired. The taxonomy is closed and typed so alert
/// streams can be asserted on in tests and aggregated per reason in the
/// metrics registry (mirroring `RejectReason` for placement rejections).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertReason {
    /// The windowed gap ratio (cost over lower bound) stayed above the
    /// configured fraction of the proven competitive bound for the
    /// configured number of consecutive windows.
    GapBreach,
    /// A displacement storm: crashes displaced at least the configured
    /// number of jobs inside one window.
    DisplacementStorm,
    /// Windowed p99 decision latency regressed past the configured factor
    /// of the run-start baseline window.
    LatencyRegression,
    /// Jobs were dropped (never silent) at or above the configured count
    /// inside one window.
    DropSurge,
}

impl AlertReason {
    /// Every reason, in stable registry/report order.
    pub const ALL: [AlertReason; 4] = [
        AlertReason::GapBreach,
        AlertReason::DisplacementStorm,
        AlertReason::LatencyRegression,
        AlertReason::DropSurge,
    ];

    /// Stable kebab-case name (label value, CLI `--expect` argument).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AlertReason::GapBreach => "gap-breach",
            AlertReason::DisplacementStorm => "displacement-storm",
            AlertReason::LatencyRegression => "latency-regression",
            AlertReason::DropSurge => "drop-surge",
        }
    }

    /// Parses the kebab-case name produced by [`AlertReason::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<AlertReason> {
        AlertReason::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// Index into [`AlertReason::ALL`] (per-reason counter slot).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            AlertReason::GapBreach => 0,
            AlertReason::DisplacementStorm => 1,
            AlertReason::LatencyRegression => 2,
            AlertReason::DropSurge => 3,
        }
    }
}

/// Phase of a tenant's lifecycle inside the resident service
/// (`bshm-serve`). Closed and typed, like [`AlertReason`], so supervision
/// histories can be asserted on in drills and counted per phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TenantPhase {
    /// The tenant was admitted and its instance registered.
    Admitted,
    /// The supervisor wrote a checkpoint for the tenant.
    Checkpointed,
    /// The tenant was killed mid-batch (crash, panic, or injected kill).
    Killed,
    /// The tenant was restored from its checkpoint plus salvaged log and
    /// the restore verified digest-identical.
    Restored,
    /// The tenant was checkpointed and flushed as part of a graceful
    /// drain.
    Drained,
    /// The tenant was shed by the degradation ladder's last rung.
    Shed,
}

impl TenantPhase {
    /// Every phase, in stable registry/report order.
    pub const ALL: [TenantPhase; 6] = [
        TenantPhase::Admitted,
        TenantPhase::Checkpointed,
        TenantPhase::Killed,
        TenantPhase::Restored,
        TenantPhase::Drained,
        TenantPhase::Shed,
    ];

    /// Stable kebab-case name (label value, drill-report field).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TenantPhase::Admitted => "admitted",
            TenantPhase::Checkpointed => "checkpointed",
            TenantPhase::Killed => "killed",
            TenantPhase::Restored => "restored",
            TenantPhase::Drained => "drained",
            TenantPhase::Shed => "shed",
        }
    }

    /// Parses the kebab-case name produced by [`TenantPhase::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<TenantPhase> {
        TenantPhase::ALL.into_iter().find(|p| p.as_str() == s)
    }

    /// Index into [`TenantPhase::ALL`] (per-phase counter slot).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TenantPhase::Admitted => 0,
            TenantPhase::Checkpointed => 1,
            TenantPhase::Killed => 2,
            TenantPhase::Restored => 3,
            TenantPhase::Drained => 4,
            TenantPhase::Shed => 5,
        }
    }
}

/// One observable moment of a scheduling run.
///
/// Traces are streams of these, one JSON object per line, in
/// nondecreasing time order with all departure-side events (`Departure`,
/// `CostAccrual`, `MachineClose`) preceding arrival-side events
/// (`Arrival`, `MachineOpen`, `Placement`) at equal timestamps — the same
/// half-open-interval convention the driver uses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job arrived and is about to be placed.
    Arrival {
        /// Simulation time.
        t: TimePoint,
        /// The arriving job.
        job: JobId,
        /// Its size (the only thing a non-clairvoyant policy sees).
        size: u64,
    },
    /// A machine transitioned idle → busy (starts accruing cost).
    MachineOpen {
        /// Simulation time.
        t: TimePoint,
        /// The machine.
        machine: MachineId,
        /// Its catalog type.
        machine_type: TypeIndex,
    },
    /// The scheduler chose a machine for an arrived job.
    Placement {
        /// Simulation time.
        t: TimePoint,
        /// The placed job.
        job: JobId,
        /// The chosen machine.
        machine: MachineId,
        /// The machine's catalog type.
        machine_type: TypeIndex,
        /// Whether the machine was created for this placement.
        opened: bool,
        /// Wall-clock nanoseconds the decision took (0 when synthesized
        /// from a finished offline schedule).
        decision_ns: u64,
        /// Machine load after the placement.
        load: u64,
        /// Machine capacity.
        capacity: u64,
    },
    /// A job departed from its machine.
    Departure {
        /// Simulation time.
        t: TimePoint,
        /// The departing job.
        job: JobId,
        /// The machine it ran on.
        machine: MachineId,
    },
    /// A machine finished a busy span: cost `rate × busy` was incurred.
    CostAccrual {
        /// Simulation time (end of the busy span).
        t: TimePoint,
        /// The machine.
        machine: MachineId,
        /// Its catalog type.
        machine_type: TypeIndex,
        /// Length of the busy span just ended.
        busy: u64,
        /// The type's cost rate per tick.
        rate: u64,
    },
    /// A machine transitioned busy → idle.
    MachineClose {
        /// Simulation time.
        t: TimePoint,
        /// The machine.
        machine: MachineId,
        /// Its catalog type.
        machine_type: TypeIndex,
        /// When the span being closed began.
        opened_at: TimePoint,
    },
    /// A machine was crashed/revoked by a fault plan. Any busy span was
    /// already closed (and charged) by the preceding `CostAccrual` +
    /// `MachineClose` pair; this event records the revocation itself.
    MachineCrash {
        /// Simulation time of the revocation.
        t: TimePoint,
        /// The revoked machine.
        machine: MachineId,
        /// Its catalog type.
        machine_type: TypeIndex,
        /// Number of still-active jobs displaced by the crash.
        displaced: u64,
    },
    /// A displaced job was re-placed by a recovery policy.
    JobRecovery {
        /// Simulation time (same instant as the crash).
        t: TimePoint,
        /// The recovered job.
        job: JobId,
        /// The machine it was displaced from.
        from: MachineId,
        /// The recovery machine it now runs on.
        to: MachineId,
        /// The recovery machine's catalog type.
        machine_type: TypeIndex,
        /// Wall-clock nanoseconds the re-placement decision took.
        recovery_ns: u64,
    },
    /// A job was lost: either a recovery policy could not re-place it or it
    /// was infeasible on arrival (e.g. an injected oversized job). Never
    /// silent — the reason says why.
    JobDropped {
        /// Simulation time.
        t: TimePoint,
        /// The dropped job.
        job: JobId,
        /// Why no machine holds this job.
        reason: String,
    },
    /// The decision x-ray behind a `Placement`: the candidate machines
    /// the policy examined and rejected (with typed reasons), the winner
    /// with how it was obtained, and the deterministic operation counts
    /// the decision cost. Opt-in — only x-ray runs emit it — and
    /// arrival-side, immediately after its matching `Placement`. Every
    /// field is derived from control flow (never clocks), so two runs
    /// over the same instance produce byte-identical decision traces.
    Decision {
        /// Simulation time.
        t: TimePoint,
        /// The placed job.
        job: JobId,
        /// The winning machine.
        machine: MachineId,
        /// How the winner was obtained (opened vs reused, and flavor).
        placed: PlaceReason,
        /// Open-machine pool size when the decision started.
        pool_size: u64,
        /// Candidates rejected with a machine identity, in scan order.
        candidates: Vec<RejectedCandidate>,
        /// Exact operation counts for this decision.
        ops: OpCounter,
    },
    /// A live optimality-gap gauge sample: the incrementally maintained
    /// busy-time lower bound and the cost accrued so far, both at time
    /// `t`. Emitted by the gap observatory as the last event of each
    /// distinct timestamp, so `replay` can rebuild the gap timeline from
    /// the trace alone. Values saturate at `u64::MAX` (costs are exact
    /// `u128` in-process; traces store `u64` like every other cost field).
    GapSample {
        /// Simulation time.
        t: TimePoint,
        /// Lower bound of the prefix observed so far (`∫ OPT-config dt`).
        lower_bound: u64,
        /// Cost accrued so far: closed busy spans plus the accrued part of
        /// still-open spans up to `t`.
        cost: u64,
    },
    /// An SLO breach detected by the deterministic alert engine over a
    /// closed telemetry window. `t` is the window's exclusive end, and the
    /// event is departure-side: an alert summarizing `[start, t)` precedes
    /// everything that happens at `t`. Both `value` and `threshold` are
    /// fixed-point milli-units (`u64`, value × 1000) so alert streams stay
    /// byte-identical across runs — no float formatting in the trace.
    Alert {
        /// Simulation time: exclusive end of the breached window.
        t: TimePoint,
        /// Typed cause of the breach.
        reason: AlertReason,
        /// Index of the breached window (window `w` covers
        /// `[w·width, (w+1)·width)`).
        window: u64,
        /// Observed value in milli-units (e.g. gap ratio 1.25 → 1250).
        value_milli: u64,
        /// Configured threshold in the same milli-units.
        threshold_milli: u64,
    },
    /// A tenant changed lifecycle phase inside the resident service:
    /// admitted, checkpointed, killed, restored, drained or shed. `t` is
    /// the tenant's own event clock at the transition. Arrival-side, like
    /// the admissions and re-placements it narrates.
    TenantLifecycle {
        /// The tenant's event clock at the transition.
        t: TimePoint,
        /// The tenant's service-unique name.
        tenant: String,
        /// The phase entered.
        phase: TenantPhase,
    },
    /// The service's graceful-degradation ladder moved between rungs
    /// (0 = full service, then successively cheaper modes). Departure-side,
    /// like the [`TraceEvent::Alert`]s that justify it: the transition
    /// summarizes pressure already observed.
    Degradation {
        /// The service event clock at the transition.
        t: TimePoint,
        /// The rung being left.
        from_rung: u64,
        /// The rung being entered.
        to_rung: u64,
        /// The dominant alert reason that drove the transition.
        reason: AlertReason,
    },
}

impl TraceEvent {
    /// The event's simulation time.
    #[must_use]
    pub fn time(&self) -> TimePoint {
        match *self {
            TraceEvent::Arrival { t, .. }
            | TraceEvent::MachineOpen { t, .. }
            | TraceEvent::Placement { t, .. }
            | TraceEvent::Departure { t, .. }
            | TraceEvent::CostAccrual { t, .. }
            | TraceEvent::MachineClose { t, .. }
            | TraceEvent::MachineCrash { t, .. }
            | TraceEvent::JobRecovery { t, .. }
            | TraceEvent::JobDropped { t, .. }
            | TraceEvent::Decision { t, .. }
            | TraceEvent::GapSample { t, .. }
            | TraceEvent::Alert { t, .. }
            | TraceEvent::TenantLifecycle { t, .. }
            | TraceEvent::Degradation { t, .. } => t,
        }
    }

    /// A short kind name (`"Arrival"`, `"Placement"`, …).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "Arrival",
            TraceEvent::MachineOpen { .. } => "MachineOpen",
            TraceEvent::Placement { .. } => "Placement",
            TraceEvent::Departure { .. } => "Departure",
            TraceEvent::CostAccrual { .. } => "CostAccrual",
            TraceEvent::MachineClose { .. } => "MachineClose",
            TraceEvent::MachineCrash { .. } => "MachineCrash",
            TraceEvent::JobRecovery { .. } => "JobRecovery",
            TraceEvent::JobDropped { .. } => "JobDropped",
            TraceEvent::Decision { .. } => "Decision",
            TraceEvent::GapSample { .. } => "GapSample",
            TraceEvent::Alert { .. } => "Alert",
            TraceEvent::TenantLifecycle { .. } => "TenantLifecycle",
            TraceEvent::Degradation { .. } => "Degradation",
        }
    }

    /// Whether this is a departure-side event (sorted before arrival-side
    /// events at equal timestamps). `MachineCrash` is departure-side: a
    /// crash at `t` strikes after departures at `t` but before arrivals
    /// (half-open intervals); the recovery events it triggers
    /// (`JobRecovery`, and `JobDropped` for unrecoverable jobs) are
    /// arrival-side, like the re-placements they describe. `GapSample` is
    /// arrival-side: it samples the state *after* everything at its
    /// timestamp, so it always closes the timestamp it stamps. `Alert` is
    /// departure-side: it summarizes the window `[start, t)` that just
    /// closed, so it *opens* its timestamp, before anything else at `t`.
    /// `Degradation` is departure-side for the same reason (it reacts to
    /// alerts already seen); `TenantLifecycle` is arrival-side, like the
    /// admissions it narrates.
    #[must_use]
    pub fn is_departure_side(&self) -> bool {
        matches!(
            self,
            TraceEvent::Departure { .. }
                | TraceEvent::CostAccrual { .. }
                | TraceEvent::MachineClose { .. }
                | TraceEvent::MachineCrash { .. }
                | TraceEvent::Alert { .. }
                | TraceEvent::Degradation { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bshm_core::ops::RejectReason;

    #[test]
    fn json_round_trip() {
        let events = vec![
            TraceEvent::Arrival {
                t: 3,
                job: JobId(7),
                size: 4,
            },
            TraceEvent::MachineOpen {
                t: 3,
                machine: MachineId(0),
                machine_type: TypeIndex(1),
            },
            TraceEvent::Placement {
                t: 3,
                job: JobId(7),
                machine: MachineId(0),
                machine_type: TypeIndex(1),
                opened: true,
                decision_ns: 120,
                load: 4,
                capacity: 16,
            },
            TraceEvent::Departure {
                t: 9,
                job: JobId(7),
                machine: MachineId(0),
            },
            TraceEvent::CostAccrual {
                t: 9,
                machine: MachineId(0),
                machine_type: TypeIndex(1),
                busy: 6,
                rate: 3,
            },
            TraceEvent::MachineClose {
                t: 9,
                machine: MachineId(0),
                machine_type: TypeIndex(1),
                opened_at: 3,
            },
            TraceEvent::MachineCrash {
                t: 6,
                machine: MachineId(0),
                machine_type: TypeIndex(1),
                displaced: 2,
            },
            TraceEvent::JobRecovery {
                t: 6,
                job: JobId(7),
                from: MachineId(0),
                to: MachineId(3),
                machine_type: TypeIndex(0),
                recovery_ns: 85,
            },
            TraceEvent::JobDropped {
                t: 6,
                job: JobId(8),
                reason: "oversized: size 99 exceeds every machine type".to_string(),
            },
            TraceEvent::GapSample {
                t: 9,
                lower_bound: 18,
                cost: 24,
            },
            TraceEvent::Alert {
                t: 20,
                reason: AlertReason::GapBreach,
                window: 1,
                value_milli: 1250,
                threshold_milli: 1100,
            },
            TraceEvent::TenantLifecycle {
                t: 12,
                tenant: "team-a".to_string(),
                phase: TenantPhase::Restored,
            },
            TraceEvent::Degradation {
                t: 40,
                from_rung: 0,
                to_rung: 1,
                reason: AlertReason::LatencyRegression,
            },
            TraceEvent::Decision {
                t: 3,
                job: JobId(7),
                machine: MachineId(0),
                placed: PlaceReason::Opened,
                pool_size: 2,
                candidates: vec![
                    RejectedCandidate {
                        machine: MachineId(1),
                        reason: RejectReason::Capacity,
                    },
                    RejectedCandidate {
                        machine: MachineId(2),
                        reason: RejectReason::Busy,
                    },
                ],
                ops: OpCounter {
                    decisions: 1,
                    machines_scanned: 2,
                    capacity_comparisons: 2,
                    rejected_capacity: 1,
                    rejected_busy: 1,
                    machines_opened: 1,
                    ..OpCounter::default()
                },
            },
        ];
        for e in events {
            let line = serde_json::to_string(&e).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, e, "{line}");
        }
    }

    #[test]
    fn accessors() {
        let e = TraceEvent::Departure {
            t: 5,
            job: JobId(1),
            machine: MachineId(2),
        };
        assert_eq!(e.time(), 5);
        assert_eq!(e.kind(), "Departure");
        assert!(e.is_departure_side());
        let a = TraceEvent::Arrival {
            t: 5,
            job: JobId(1),
            size: 1,
        };
        assert!(!a.is_departure_side());
        let c = TraceEvent::MachineCrash {
            t: 6,
            machine: MachineId(0),
            machine_type: TypeIndex(0),
            displaced: 1,
        };
        assert_eq!(c.kind(), "MachineCrash");
        assert!(c.is_departure_side());
        let r = TraceEvent::JobRecovery {
            t: 6,
            job: JobId(1),
            from: MachineId(0),
            to: MachineId(1),
            machine_type: TypeIndex(0),
            recovery_ns: 10,
        };
        assert_eq!(r.kind(), "JobRecovery");
        assert!(!r.is_departure_side());
        let d = TraceEvent::JobDropped {
            t: 6,
            job: JobId(2),
            reason: "no recovery capacity".to_string(),
        };
        assert_eq!(d.kind(), "JobDropped");
        assert!(!d.is_departure_side());
        let g = TraceEvent::GapSample {
            t: 7,
            lower_bound: 10,
            cost: 12,
        };
        assert_eq!(g.time(), 7);
        assert_eq!(g.kind(), "GapSample");
        assert!(!g.is_departure_side());
        let x = TraceEvent::Decision {
            t: 7,
            job: JobId(1),
            machine: MachineId(0),
            placed: PlaceReason::Reused,
            pool_size: 1,
            candidates: Vec::new(),
            ops: OpCounter::default(),
        };
        assert_eq!(x.time(), 7);
        assert_eq!(x.kind(), "Decision");
        assert!(!x.is_departure_side());
        let al = TraceEvent::Alert {
            t: 30,
            reason: AlertReason::DisplacementStorm,
            window: 2,
            value_milli: 5000,
            threshold_milli: 3000,
        };
        assert_eq!(al.time(), 30);
        assert_eq!(al.kind(), "Alert");
        assert!(al.is_departure_side());
        let tl = TraceEvent::TenantLifecycle {
            t: 11,
            tenant: "team-a".to_string(),
            phase: TenantPhase::Admitted,
        };
        assert_eq!(tl.time(), 11);
        assert_eq!(tl.kind(), "TenantLifecycle");
        assert!(!tl.is_departure_side());
        let dg = TraceEvent::Degradation {
            t: 12,
            from_rung: 1,
            to_rung: 2,
            reason: AlertReason::DropSurge,
        };
        assert_eq!(dg.time(), 12);
        assert_eq!(dg.kind(), "Degradation");
        assert!(dg.is_departure_side());
    }

    #[test]
    fn tenant_phase_names_round_trip() {
        for p in TenantPhase::ALL {
            assert_eq!(TenantPhase::parse(p.as_str()), Some(p));
            assert_eq!(TenantPhase::ALL[p.index()], p);
        }
        assert_eq!(TenantPhase::parse("nope"), None);
    }

    #[test]
    fn alert_reason_names_round_trip() {
        for r in AlertReason::ALL {
            assert_eq!(AlertReason::parse(r.as_str()), Some(r));
            assert_eq!(AlertReason::ALL[r.index()], r);
        }
        assert_eq!(AlertReason::parse("nope"), None);
    }
}
