//! The structured trace-event vocabulary.

use bshm_core::job::JobId;
use bshm_core::machine::TypeIndex;
use bshm_core::schedule::MachineId;
use bshm_core::time::TimePoint;
use serde::{Deserialize, Serialize};

/// One observable moment of a scheduling run.
///
/// Traces are streams of these, one JSON object per line, in
/// nondecreasing time order with all departure-side events (`Departure`,
/// `CostAccrual`, `MachineClose`) preceding arrival-side events
/// (`Arrival`, `MachineOpen`, `Placement`) at equal timestamps — the same
/// half-open-interval convention the driver uses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job arrived and is about to be placed.
    Arrival {
        /// Simulation time.
        t: TimePoint,
        /// The arriving job.
        job: JobId,
        /// Its size (the only thing a non-clairvoyant policy sees).
        size: u64,
    },
    /// A machine transitioned idle → busy (starts accruing cost).
    MachineOpen {
        /// Simulation time.
        t: TimePoint,
        /// The machine.
        machine: MachineId,
        /// Its catalog type.
        machine_type: TypeIndex,
    },
    /// The scheduler chose a machine for an arrived job.
    Placement {
        /// Simulation time.
        t: TimePoint,
        /// The placed job.
        job: JobId,
        /// The chosen machine.
        machine: MachineId,
        /// The machine's catalog type.
        machine_type: TypeIndex,
        /// Whether the machine was created for this placement.
        opened: bool,
        /// Wall-clock nanoseconds the decision took (0 when synthesized
        /// from a finished offline schedule).
        decision_ns: u64,
        /// Machine load after the placement.
        load: u64,
        /// Machine capacity.
        capacity: u64,
    },
    /// A job departed from its machine.
    Departure {
        /// Simulation time.
        t: TimePoint,
        /// The departing job.
        job: JobId,
        /// The machine it ran on.
        machine: MachineId,
    },
    /// A machine finished a busy span: cost `rate × busy` was incurred.
    CostAccrual {
        /// Simulation time (end of the busy span).
        t: TimePoint,
        /// The machine.
        machine: MachineId,
        /// Its catalog type.
        machine_type: TypeIndex,
        /// Length of the busy span just ended.
        busy: u64,
        /// The type's cost rate per tick.
        rate: u64,
    },
    /// A machine transitioned busy → idle.
    MachineClose {
        /// Simulation time.
        t: TimePoint,
        /// The machine.
        machine: MachineId,
        /// Its catalog type.
        machine_type: TypeIndex,
        /// When the span being closed began.
        opened_at: TimePoint,
    },
}

impl TraceEvent {
    /// The event's simulation time.
    #[must_use]
    pub fn time(&self) -> TimePoint {
        match *self {
            TraceEvent::Arrival { t, .. }
            | TraceEvent::MachineOpen { t, .. }
            | TraceEvent::Placement { t, .. }
            | TraceEvent::Departure { t, .. }
            | TraceEvent::CostAccrual { t, .. }
            | TraceEvent::MachineClose { t, .. } => t,
        }
    }

    /// A short kind name (`"Arrival"`, `"Placement"`, …).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "Arrival",
            TraceEvent::MachineOpen { .. } => "MachineOpen",
            TraceEvent::Placement { .. } => "Placement",
            TraceEvent::Departure { .. } => "Departure",
            TraceEvent::CostAccrual { .. } => "CostAccrual",
            TraceEvent::MachineClose { .. } => "MachineClose",
        }
    }

    /// Whether this is a departure-side event (sorted before arrival-side
    /// events at equal timestamps).
    #[must_use]
    pub fn is_departure_side(&self) -> bool {
        matches!(
            self,
            TraceEvent::Departure { .. }
                | TraceEvent::CostAccrual { .. }
                | TraceEvent::MachineClose { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let events = vec![
            TraceEvent::Arrival {
                t: 3,
                job: JobId(7),
                size: 4,
            },
            TraceEvent::MachineOpen {
                t: 3,
                machine: MachineId(0),
                machine_type: TypeIndex(1),
            },
            TraceEvent::Placement {
                t: 3,
                job: JobId(7),
                machine: MachineId(0),
                machine_type: TypeIndex(1),
                opened: true,
                decision_ns: 120,
                load: 4,
                capacity: 16,
            },
            TraceEvent::Departure {
                t: 9,
                job: JobId(7),
                machine: MachineId(0),
            },
            TraceEvent::CostAccrual {
                t: 9,
                machine: MachineId(0),
                machine_type: TypeIndex(1),
                busy: 6,
                rate: 3,
            },
            TraceEvent::MachineClose {
                t: 9,
                machine: MachineId(0),
                machine_type: TypeIndex(1),
                opened_at: 3,
            },
        ];
        for e in events {
            let line = serde_json::to_string(&e).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, e, "{line}");
        }
    }

    #[test]
    fn accessors() {
        let e = TraceEvent::Departure {
            t: 5,
            job: JobId(1),
            machine: MachineId(2),
        };
        assert_eq!(e.time(), 5);
        assert_eq!(e.kind(), "Departure");
        assert!(e.is_departure_side());
        let a = TraceEvent::Arrival {
            t: 5,
            job: JobId(1),
            size: 1,
        };
        assert!(!a.is_departure_side());
    }
}
