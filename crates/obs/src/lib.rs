//! # bshm-obs
//!
//! Observability for the bshm reproduction: structured trace events,
//! probes, aggregated metrics, span timers, and trace replay.
//!
//! The pieces fit together like this:
//!
//! * [`TraceEvent`] is the shared vocabulary — arrivals, placement
//!   decisions, machine opens/closes, departures, and cost accruals, each
//!   stamped with its simulation time. One JSON object per line makes a
//!   run's trace (`*.jsonl`).
//! * [`Probe`] is the hook trait the simulator driver and the offline
//!   solvers report into. [`NoProbe`] is the default; its
//!   [`Probe::enabled`] returns `false` and monomorphizes every
//!   instrumentation branch away, so un-probed runs pay nothing.
//! * [`Recorder`] is the workhorse probe: it streams events to a JSONL
//!   writer and folds them into [`Metrics`] (counters, per-type
//!   open-machine gauge timeline, utilization and decision-latency
//!   histograms, per-type cost).
//! * [`span`] is a process-global registry of named wall-clock timers for
//!   hot paths (`lower_bound`, the offline solvers, the online
//!   `on_arrival`), off by default; the bench harness enables it and dumps
//!   the breakdown into its JSON output.
//! * [`replay`] parses a trace back, reconstructs the per-type busy-machine
//!   timeline from open/close events, and cross-checks it against
//!   [`bshm_core::analysis::machine_timeline`]. [`replay::synthesize`]
//!   produces the canonical event stream for a *finished* (offline)
//!   schedule so offline and online runs trace identically.
//! * [`prometheus`] renders [`Metrics`] (and span timers) in the
//!   Prometheus text-exposition format — counters, gauges, and the
//!   latency/utilization histograms as cumulative `_bucket` series —
//!   and ships the [`validate_exposition`] parser the tests gate on.
//! * [`gap`] is the live optimality-gap observatory: [`GapProbe`] wraps
//!   any probe, maintains the incremental busy-time lower bound and the
//!   accrued cost while events stream past, and emits one
//!   `TraceEvent::GapSample` per distinct timestamp;
//!   [`compute_gap_timeline`] rebuilds the same timeline from pre-gap
//!   traces.
//! * [`attribution`] is the deterministic cost-attribution ledger:
//!   [`CostLedger`] charges every unit of busy-time cost to responsible
//!   jobs (opener pays for the opening segment, extensions split
//!   proportionally by occupant size) with an exact integer total.
//! * [`registry`] is the labeled metrics layer above the flat
//!   [`Metrics`]: counter/gauge/histogram families keyed by
//!   `algorithm`/`workload`/`size_class` label sets, rendered as one
//!   Prometheus exposition via [`Registry::encode`].
//! * [`sink`] gives trace files crash semantics: [`TraceWriter`] streams
//!   to `<path>.partial` and renames into place on finalize (optionally
//!   flushing every line), [`salvage_jsonl`] recovers the valid prefix of
//!   a truncated trace, and [`sink::atomic_write`] writes whole artifacts
//!   (checkpoints, reports) torn-free.
//! * [`flight`] is the bounded flight recorder: [`FlightRecorder`] keeps
//!   the last N events in a fixed-capacity ring and dumps them as an
//!   atomic JSONL snapshot when the health plane asks for a post-mortem.
//! * [`window`] is rolling-window telemetry: [`RollingWindows`] cuts the
//!   stream into event-clock windows ([`bshm_core::WindowClock`]) and
//!   folds each into a [`WindowStats`] (windowed latency percentiles,
//!   windowed gap ratio, open-machine and displacement rates) with a
//!   bounded history ring.
//! * [`slo`] is the deterministic SLO engine: [`SloSpec`] parses the
//!   declarative threshold grammar, [`SloEngine`] evaluates closed
//!   windows in fixed-point integer arithmetic, and [`HealthProbe`]
//!   packages windows + engine + flight recorder as probe middleware
//!   that emits typed `TraceEvent::Alert`s into the wrapped probe.
//!
//! Events reference jobs, machines and catalog types by the core ids
//! ([`bshm_core::JobId`], [`bshm_core::MachineId`],
//! [`bshm_core::TypeIndex`]), so a trace joins cleanly against its
//! instance and schedule files.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod attribution;
pub mod event;
pub mod flight;
pub mod gap;
pub mod probe;
pub mod prometheus;
pub mod recorder;
pub mod registry;
pub mod replay;
pub mod sink;
pub mod slo;
pub mod span;
pub mod window;

pub use attribution::CostLedger;
pub use event::{AlertReason, TenantPhase, TraceEvent};
pub use flight::FlightRecorder;
pub use gap::{compute_gap_timeline, gap_timeline_from_events, GapPoint, GapProbe, GapTimeline};
pub use probe::{Collector, Deterministic, NoProbe, Probe};
pub use prometheus::{encode as encode_prometheus, validate_exposition};
pub use recorder::{bucket_quantile, merge_counts, merge_gauge_timelines, Metrics, Recorder};
pub use registry::{labels, HistogramValue, Labels, MetricKind, Registry, RegistryError};
pub use replay::{
    cross_check, machine_utilization, metrics_from_events, parse_jsonl, replay_timeline,
    stream_jsonl_file, synthesize, synthesize_xray, EventStream, MachineUsage, ReplayedTimeline,
    UsagePoint,
};
pub use sink::{salvage_jsonl, salvage_jsonl_str, Salvage, TraceWriter};
pub use slo::{
    write_health_report, AlertFire, AlertRecord, HealthProbe, HealthReport, SloEngine, SloRule,
    SloSpec, DEFAULT_SLO_SPEC,
};
pub use span::{SpanGuard, SpanStat};
pub use window::{sum_windows, RollingWindows, WindowStats};
