//! The [`Probe`] trait: where instrumented code reports events.

use crate::event::TraceEvent;
use bshm_core::job::JobId;
use bshm_core::machine::TypeIndex;
use bshm_core::schedule::MachineId;
use bshm_core::time::TimePoint;

/// A sink for [`TraceEvent`]s.
///
/// Instrumented code (the simulator driver, the offline-schedule
/// synthesizer) calls the per-kind hooks; their default implementations
/// build the event and forward to [`Probe::record`], so most probes
/// implement only `record`. Probes that want to skip event construction
/// for some kinds can override the individual hooks instead.
///
/// Instrumentation sites are expected to guard on [`Probe::enabled`]:
/// with [`NoProbe`] that guard is a monomorphized `false`, so disabled
/// probing compiles down to nothing.
pub trait Probe {
    /// Whether this probe wants events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. The event is borrowed; clone to keep it.
    fn record(&mut self, event: &TraceEvent);

    /// Called once when the run completes; flush buffers here.
    fn finish(&mut self) {}

    /// A job arrived.
    fn on_arrival(&mut self, t: TimePoint, job: JobId, size: u64) {
        self.record(&TraceEvent::Arrival { t, job, size });
    }

    /// A machine went idle → busy.
    fn on_machine_open(&mut self, t: TimePoint, machine: MachineId, machine_type: TypeIndex) {
        self.record(&TraceEvent::MachineOpen {
            t,
            machine,
            machine_type,
        });
    }

    /// The scheduler placed a job.
    #[allow(clippy::too_many_arguments)]
    fn on_placement(
        &mut self,
        t: TimePoint,
        job: JobId,
        machine: MachineId,
        machine_type: TypeIndex,
        opened: bool,
        decision_ns: u64,
        load: u64,
        capacity: u64,
    ) {
        self.record(&TraceEvent::Placement {
            t,
            job,
            machine,
            machine_type,
            opened,
            decision_ns,
            load,
            capacity,
        });
    }

    /// A job departed.
    fn on_departure(&mut self, t: TimePoint, job: JobId, machine: MachineId) {
        self.record(&TraceEvent::Departure { t, job, machine });
    }

    /// A machine finished a busy span of length `busy` at rate `rate`.
    fn on_cost_accrual(
        &mut self,
        t: TimePoint,
        machine: MachineId,
        machine_type: TypeIndex,
        busy: u64,
        rate: u64,
    ) {
        self.record(&TraceEvent::CostAccrual {
            t,
            machine,
            machine_type,
            busy,
            rate,
        });
    }

    /// A machine went busy → idle.
    fn on_machine_close(
        &mut self,
        t: TimePoint,
        machine: MachineId,
        machine_type: TypeIndex,
        opened_at: TimePoint,
    ) {
        self.record(&TraceEvent::MachineClose {
            t,
            machine,
            machine_type,
            opened_at,
        });
    }

    /// A machine was crashed/revoked, displacing `displaced` active jobs.
    fn on_machine_crash(
        &mut self,
        t: TimePoint,
        machine: MachineId,
        machine_type: TypeIndex,
        displaced: u64,
    ) {
        self.record(&TraceEvent::MachineCrash {
            t,
            machine,
            machine_type,
            displaced,
        });
    }

    /// A displaced job was re-placed by a recovery policy.
    fn on_job_recovery(
        &mut self,
        t: TimePoint,
        job: JobId,
        from: MachineId,
        to: MachineId,
        machine_type: TypeIndex,
        recovery_ns: u64,
    ) {
        self.record(&TraceEvent::JobRecovery {
            t,
            job,
            from,
            to,
            machine_type,
            recovery_ns,
        });
    }

    /// A job was dropped (with the reason) instead of being placed.
    fn on_job_dropped(&mut self, t: TimePoint, job: JobId, reason: &str) {
        self.record(&TraceEvent::JobDropped {
            t,
            job,
            reason: reason.to_string(),
        });
    }

    /// A gap-gauge sample: the incrementally maintained lower bound and
    /// the cost accrued so far, both at time `t`.
    fn on_gap_sample(&mut self, t: TimePoint, lower_bound: u64, cost: u64) {
        self.record(&TraceEvent::GapSample {
            t,
            lower_bound,
            cost,
        });
    }

    /// An SLO alert fired by the health plane over the closed window
    /// `window` ending at `t`. Values are fixed-point milli-units.
    fn on_alert(
        &mut self,
        t: TimePoint,
        reason: crate::event::AlertReason,
        window: u64,
        value_milli: u64,
        threshold_milli: u64,
    ) {
        self.record(&TraceEvent::Alert {
            t,
            reason,
            window,
            value_milli,
            threshold_milli,
        });
    }

    /// A resident-service tenant entered a new lifecycle phase.
    fn on_tenant_lifecycle(
        &mut self,
        t: TimePoint,
        tenant: &str,
        phase: crate::event::TenantPhase,
    ) {
        self.record(&TraceEvent::TenantLifecycle {
            t,
            tenant: tenant.to_string(),
            phase,
        });
    }

    /// The resident service's degradation ladder moved between rungs.
    fn on_degradation(
        &mut self,
        t: TimePoint,
        from_rung: u64,
        to_rung: u64,
        reason: crate::event::AlertReason,
    ) {
        self.record(&TraceEvent::Degradation {
            t,
            from_rung,
            to_rung,
            reason,
        });
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn record(&mut self, event: &TraceEvent) {
        (**self).record(event);
    }
    fn finish(&mut self) {
        (**self).finish();
    }
}

/// The no-op probe: [`Probe::enabled`] is `false`, so instrumented code
/// skips event construction entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _event: &TraceEvent) {}
}

/// A probe that keeps every event in memory — for tests and replay
/// round-trips.
#[derive(Clone, Debug, Default)]
pub struct Collector {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl Probe for Collector {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// An adapter that zeroes the wall-clock fields (`decision_ns` on
/// `Placement`, `recovery_ns` on `JobRecovery`) before forwarding to the
/// wrapped probe.
///
/// Those fields are live timings, so two otherwise-identical runs never
/// produce byte-identical traces. Wrapping both probes in `Deterministic`
/// makes byte-level trace comparison meaningful — the fault layer's
/// empty-plan equivalence and checkpoint-determinism proofs rely on it.
#[derive(Clone, Debug, Default)]
pub struct Deterministic<P>(
    /// The probe receiving the normalized events.
    pub P,
);

impl<P: Probe> Probe for Deterministic<P> {
    fn enabled(&self) -> bool {
        self.0.enabled()
    }

    fn record(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Placement {
                t,
                job,
                machine,
                machine_type,
                opened,
                decision_ns: _,
                load,
                capacity,
            } => self.0.record(&TraceEvent::Placement {
                t,
                job,
                machine,
                machine_type,
                opened,
                decision_ns: 0,
                load,
                capacity,
            }),
            TraceEvent::JobRecovery {
                t,
                job,
                from,
                to,
                machine_type,
                recovery_ns: _,
            } => self.0.record(&TraceEvent::JobRecovery {
                t,
                job,
                from,
                to,
                machine_type,
                recovery_ns: 0,
            }),
            ref other => self.0.record(other),
        }
    }

    fn finish(&mut self) {
        self.0.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_build_events() {
        let mut c = Collector::default();
        c.on_arrival(1, JobId(0), 2);
        c.on_machine_open(1, MachineId(0), TypeIndex(0));
        c.on_placement(1, JobId(0), MachineId(0), TypeIndex(0), true, 10, 2, 4);
        c.on_departure(5, JobId(0), MachineId(0));
        c.on_cost_accrual(5, MachineId(0), TypeIndex(0), 4, 1);
        c.on_machine_close(5, MachineId(0), TypeIndex(0), 1);
        let kinds: Vec<&str> = c.events.iter().map(TraceEvent::kind).collect();
        assert_eq!(
            kinds,
            [
                "Arrival",
                "MachineOpen",
                "Placement",
                "Departure",
                "CostAccrual",
                "MachineClose"
            ]
        );
    }

    #[test]
    fn fault_hooks_build_events() {
        let mut c = Collector::default();
        c.on_machine_crash(4, MachineId(0), TypeIndex(1), 3);
        c.on_job_recovery(4, JobId(2), MachineId(0), MachineId(5), TypeIndex(0), 77);
        c.on_job_dropped(4, JobId(3), "no capacity");
        let kinds: Vec<&str> = c.events.iter().map(TraceEvent::kind).collect();
        assert_eq!(kinds, ["MachineCrash", "JobRecovery", "JobDropped"]);
        assert_eq!(
            c.events[2],
            TraceEvent::JobDropped {
                t: 4,
                job: JobId(3),
                reason: "no capacity".to_string(),
            }
        );
    }

    #[test]
    fn deterministic_zeroes_wall_clock_fields() {
        let mut d = Deterministic(Collector::default());
        assert!(d.enabled());
        d.on_placement(1, JobId(0), MachineId(0), TypeIndex(0), true, 999, 2, 4);
        d.on_job_recovery(2, JobId(0), MachineId(0), MachineId(1), TypeIndex(0), 999);
        d.on_arrival(3, JobId(1), 1);
        d.finish();
        match &d.0.events[0] {
            TraceEvent::Placement { decision_ns, .. } => assert_eq!(*decision_ns, 0),
            e => panic!("unexpected {e:?}"),
        }
        match &d.0.events[1] {
            TraceEvent::JobRecovery { recovery_ns, .. } => assert_eq!(*recovery_ns, 0),
            e => panic!("unexpected {e:?}"),
        }
        assert_eq!(d.0.events.len(), 3);
    }

    #[test]
    fn no_probe_is_disabled() {
        assert!(!NoProbe.enabled());
        // And a &mut forwards.
        let mut c = Collector::default();
        let r = &mut c;
        assert!(r.enabled());
        r.on_arrival(0, JobId(1), 1);
        assert_eq!(c.events.len(), 1);
    }
}
