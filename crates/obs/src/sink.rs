//! Crash-safe trace output.
//!
//! Trace files are the replay substrate: a half-written JSONL file used to
//! mean a hard `parse_jsonl` failure and a lost run. This module gives the
//! writers and readers defined crash semantics:
//!
//! * [`TraceWriter`] streams to `<path>.partial` and renames to the final
//!   path only on [`TraceWriter::finalize`], so the final path either holds
//!   a complete trace or nothing at all. A process killed mid-run leaves
//!   the `.partial` file behind for salvage.
//! * [`salvage_jsonl`] recovers the valid prefix of a truncated JSONL
//!   trace (the crash-tolerant counterpart of [`crate::replay::parse_jsonl`],
//!   which stays strict).
//! * [`atomic_write`] is the one-shot variant for whole artifacts
//!   (checkpoints, reports): temp file + rename, never a torn file.
//!
//! All direct `File::create`/`fs::write` calls for trace-shaped output in
//! the obs and sim crates are required (by the `no-raw-trace-write` lint in
//! `bshm-analyze`) to route through this module.

use crate::event::TraceEvent;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Suffix appended to the destination path while a trace is in flight.
pub const PARTIAL_SUFFIX: &str = ".partial";

/// The in-flight path for a destination: `<path>.partial`.
#[must_use]
pub fn partial_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(PARTIAL_SUFFIX);
    PathBuf::from(name)
}

/// A crash-safe line-oriented writer: bytes go to `<path>.partial`, which
/// becomes `<path>` only when [`TraceWriter::finalize`] succeeds.
///
/// With `flush_each` enabled every completed line is flushed to the OS, so
/// a killed process loses at most the line being written — the regime
/// [`salvage_jsonl`] is built for. Without it the writer is buffered and a
/// kill can lose up to a buffer's worth of events (the `.partial` name
/// still marks the file as incomplete).
#[derive(Debug)]
pub struct TraceWriter {
    final_path: PathBuf,
    partial: PathBuf,
    writer: Option<BufWriter<File>>,
    flush_each: bool,
}

impl TraceWriter {
    /// Opens `<path>.partial` for writing, truncating any stale leftover.
    ///
    /// # Errors
    /// Propagates filesystem errors with the offending path.
    pub fn create(path: impl Into<PathBuf>) -> Result<TraceWriter, String> {
        let final_path = path.into();
        let partial = partial_path(&final_path);
        // No suppression needed: this module IS the sanctioned writer the
        // no-raw-trace-write lint points everyone else at.
        let file = File::create(&partial).map_err(|e| format!("{}: {e}", partial.display()))?;
        Ok(TraceWriter {
            final_path,
            partial,
            writer: Some(BufWriter::new(file)),
            flush_each: false,
        })
    }

    /// Sets flush-per-line mode: every write ending in `\n` is flushed.
    #[must_use]
    pub fn flush_each(mut self, on: bool) -> Self {
        self.flush_each = on;
        self
    }

    /// The destination the trace will have after a successful finalize.
    #[must_use]
    pub fn final_path(&self) -> &Path {
        &self.final_path
    }

    /// The in-flight `.partial` path bytes are going to right now.
    #[must_use]
    pub fn partial_path(&self) -> &Path {
        &self.partial
    }

    /// Flushes and atomically renames `<path>.partial` to `<path>`.
    ///
    /// Idempotent: a second call after success is a no-op, so callers may
    /// finalize defensively (e.g. both `Probe::finish` and a drop guard).
    ///
    /// # Errors
    /// Propagates flush or rename errors; the `.partial` file is left in
    /// place on failure so nothing is lost.
    pub fn finalize(&mut self) -> Result<(), String> {
        let Some(mut w) = self.writer.take() else {
            return Ok(());
        };
        w.flush()
            .map_err(|e| format!("flushing {}: {e}", self.partial.display()))?;
        drop(w);
        std::fs::rename(&self.partial, &self.final_path).map_err(|e| {
            format!(
                "renaming {} -> {}: {e}",
                self.partial.display(),
                self.final_path.display()
            )
        })
    }

    /// Drops the writer without renaming, leaving the `.partial` file as
    /// the crash artifact (what a killed process would leave behind).
    pub fn abandon(mut self) {
        self.writer = None;
    }
}

impl Write for TraceWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let Some(w) = self.writer.as_mut() else {
            return Err(std::io::Error::other("trace writer already finalized"));
        };
        let n = w.write(buf)?;
        if self.flush_each && buf[..n].ends_with(b"\n") {
            w.flush()?;
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self.writer.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

/// What [`salvage_jsonl`] recovered from a damaged trace.
#[derive(Clone, Debug)]
pub struct Salvage {
    /// The valid prefix: every event up to the first damaged line.
    pub events: Vec<TraceEvent>,
    /// Non-empty lines dropped (the damaged line and everything after it).
    pub dropped_lines: u64,
    /// Bytes dropped: everything from the start of the first damaged line
    /// to the end of the input, including line terminators.
    pub dropped_bytes: u64,
}

/// Parses the longest valid prefix of a JSONL trace string.
///
/// The strict counterpart is [`crate::replay::parse_jsonl`], which fails on
/// the first malformed line; salvage instead stops there and reports how
/// many lines were abandoned, which is the right behavior for the tail of
/// a file truncated by a crash or kill.
#[must_use]
pub fn salvage_jsonl_str(text: &str) -> Salvage {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut dropped_bytes = 0u64;
    let mut damaged = false;
    let mut offset = 0usize;
    for raw in text.split_inclusive('\n') {
        let line = raw.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            offset += raw.len();
            continue;
        }
        if damaged {
            dropped += 1;
            offset += raw.len();
            continue;
        }
        match serde_json::from_str::<TraceEvent>(line) {
            Ok(e) => events.push(e),
            Err(_) => {
                damaged = true;
                dropped += 1;
                // Everything from this line's first byte to EOF is lost.
                dropped_bytes = bshm_core::convert::count_u64(text.len() - offset);
            }
        }
        offset += raw.len();
    }
    Salvage {
        events,
        dropped_lines: dropped,
        dropped_bytes,
    }
}

/// Reads a (possibly truncated) JSONL trace file and salvages its valid
/// prefix. Looks for the file itself first, then its `.partial` twin (the
/// artifact a killed [`TraceWriter`] leaves behind).
///
/// # Errors
/// Reports only unreadable files; damage is what this function is for.
pub fn salvage_jsonl(path: &Path) -> Result<Salvage, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(first) => {
            let partial = partial_path(path);
            std::fs::read_to_string(&partial)
                .map_err(|_| format!("reading {}: {first}", path.display()))?
        }
    };
    Ok(salvage_jsonl_str(&text))
}

/// Writes `contents` to `path` atomically: temp file + rename, so readers
/// never observe a torn artifact. Used for checkpoints and final reports.
///
/// # Errors
/// Propagates filesystem errors with the offending path.
pub fn atomic_write(path: &Path, contents: &str) -> Result<(), String> {
    let partial = partial_path(path);
    let mut file = File::create(&partial).map_err(|e| format!("{}: {e}", partial.display()))?;
    file.write_all(contents.as_bytes())
        .and_then(|()| file.flush())
        .map_err(|e| format!("writing {}: {e}", partial.display()))?;
    drop(file);
    std::fs::rename(&partial, path)
        .map_err(|e| format!("renaming {} -> {}: {e}", partial.display(), path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bshm_core::job::JobId;
    use bshm_core::machine::TypeIndex;
    use bshm_core::schedule::MachineId;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bshm-sink-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Arrival {
                t: 1,
                job: JobId(0),
                size: 2,
            },
            TraceEvent::MachineOpen {
                t: 1,
                machine: MachineId(0),
                machine_type: TypeIndex(0),
            },
            TraceEvent::Departure {
                t: 5,
                job: JobId(0),
                machine: MachineId(0),
            },
        ]
    }

    fn jsonl(events: &[TraceEvent]) -> String {
        events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect()
    }

    #[test]
    fn finalize_renames_partial_to_final() {
        let path = tmp("finalize.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = TraceWriter::create(&path).unwrap();
        w.write_all(jsonl(&sample_events()).as_bytes()).unwrap();
        assert!(w.partial_path().exists());
        assert!(!path.exists(), "final path must not exist before finalize");
        w.finalize().unwrap();
        w.finalize().unwrap(); // idempotent
        assert!(path.exists());
        assert!(!partial_path(&path).exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::replay::parse_jsonl(&text).unwrap().len(), 3);
    }

    #[test]
    fn abandon_leaves_only_partial() {
        let path = tmp("abandon.jsonl");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(partial_path(&path));
        let mut w = TraceWriter::create(&path).unwrap().flush_each(true);
        w.write_all(jsonl(&sample_events()).as_bytes()).unwrap();
        w.abandon();
        assert!(!path.exists());
        assert!(partial_path(&path).exists());
        // Salvage finds the partial twin via the final path.
        let s = salvage_jsonl(&path).unwrap();
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.dropped_lines, 0);
        assert_eq!(s.dropped_bytes, 0);
    }

    #[test]
    fn flush_each_persists_every_line() {
        let path = tmp("flush-each.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = TraceWriter::create(&path).unwrap().flush_each(true);
        for e in sample_events() {
            let line = serde_json::to_string(&e).unwrap();
            writeln!(w, "{line}").unwrap();
            // Every completed line is already on disk before finalize.
            let on_disk = std::fs::read_to_string(w.partial_path()).unwrap();
            assert!(on_disk.ends_with(&(line + "\n")));
        }
        w.finalize().unwrap();
    }

    #[test]
    fn salvage_recovers_valid_prefix_of_truncated_trace() {
        let full = jsonl(&sample_events());
        // Chop the final line mid-JSON, as a kill mid-write would.
        let cut = full.len() - 10;
        let truncated = &full[..cut];
        let s = salvage_jsonl_str(truncated);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.dropped_lines, 1);
        // The torn tail is everything past the two intact lines.
        let intact = jsonl(&sample_events()[..2]).len();
        assert_eq!(s.dropped_bytes, (truncated.len() - intact) as u64);
        assert_eq!(s.events, sample_events()[..2].to_vec());
        // The strict parser refuses the same text.
        assert!(crate::replay::parse_jsonl(truncated).is_err());
    }

    #[test]
    fn salvage_drops_everything_after_first_damage() {
        let events = sample_events();
        let mut text = jsonl(&events[..1]);
        text.push_str("{\"torn\n");
        text.push_str(&jsonl(&events[1..]));
        let s = salvage_jsonl_str(&text);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.dropped_lines, 3);
        let intact = jsonl(&events[..1]).len();
        assert_eq!(s.dropped_bytes, (text.len() - intact) as u64);
    }

    #[test]
    fn salvage_of_clean_trace_drops_nothing() {
        let s = salvage_jsonl_str(&jsonl(&sample_events()));
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.dropped_lines, 0);
        assert_eq!(s.dropped_bytes, 0);
        let s = salvage_jsonl_str("");
        assert!(s.events.is_empty());
        assert_eq!(s.dropped_lines, 0);
        assert_eq!(s.dropped_bytes, 0);
    }

    #[test]
    fn atomic_write_round_trips() {
        let path = tmp("atomic.json");
        atomic_write(&path, "{\"ok\":true}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
        assert!(!partial_path(&path).exists());
        // Overwrite is atomic too.
        atomic_write(&path, "{\"ok\":false}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":false}\n");
    }
}
