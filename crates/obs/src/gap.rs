//! The live optimality-gap observatory.
//!
//! [`GapProbe`] wraps any inner [`Probe`] and watches the event stream go
//! by, maintaining:
//!
//! * the incrementally updated busy-time lower bound of everything
//!   observed so far ([`bshm_core::IncrementalLowerBound`]);
//! * the cost accrued so far — settled `CostAccrual` totals plus the
//!   accrued portion of still-open busy spans.
//!
//! At the end of every distinct timestamp it emits a
//! [`TraceEvent::GapSample`] into the wrapped probe (so gap gauges land
//! in the trace and in [`crate::Metrics`]) and records a [`GapPoint`] in
//! its own [`GapTimeline`]. Samples close their timestamp: the probe
//! holds each sample back until it sees the first event of a *later*
//! time (or the run finishes), so the emitted stream stays time-sorted
//! with departure-side events still ahead of arrival-side ones.
//!
//! For traces recorded *before* gap gauges existed,
//! [`compute_gap_timeline`] rebuilds the same timeline after the fact by
//! replaying the events through the identical state machine — it only
//! needs the instance's catalog.

use crate::event::TraceEvent;
use crate::probe::Probe;
use bshm_core::cost::Cost;
use bshm_core::incremental_lb::IncrementalLowerBound;
use bshm_core::job::JobId;
use bshm_core::machine::Catalog;
use bshm_core::schedule::MachineId;
use bshm_core::time::TimePoint;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Saturates an exact cost into the `u64` traces carry.
fn sat_u64(x: Cost) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// One gap-gauge sample: lower bound and accrued cost at time `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct GapPoint {
    /// Sample time.
    pub t: TimePoint,
    /// Lower bound of the observed prefix.
    pub lower_bound: u64,
    /// Cost accrued so far (closed spans + open spans up to `t`).
    pub cost: u64,
}

impl GapPoint {
    /// `cost / lower_bound`, or `None` while the bound is still zero.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        (self.lower_bound > 0).then(|| self.cost as f64 / self.lower_bound as f64)
    }
}

/// A per-timestamp gap timeline: how the cost/lower-bound gap evolved
/// over a run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct GapTimeline {
    /// Samples in time order, one per distinct event timestamp.
    pub points: Vec<GapPoint>,
}

impl GapTimeline {
    /// The last sample, if any.
    #[must_use]
    pub fn final_point(&self) -> Option<&GapPoint> {
        self.points.last()
    }

    /// The gap ratio at the last sample (`None` for an empty timeline or
    /// a zero final lower bound).
    #[must_use]
    pub fn final_ratio(&self) -> Option<f64> {
        self.final_point().and_then(GapPoint::ratio)
    }

    /// The largest gap ratio over all samples with a positive lower
    /// bound (0 when there is none).
    #[must_use]
    pub fn max_ratio(&self) -> f64 {
        self.points
            .iter()
            .filter_map(GapPoint::ratio)
            .fold(0.0, f64::max)
    }
}

/// Extracts the gap timeline a trace already carries: one [`GapPoint`]
/// per `GapSample` event. Empty for pre-gap-observatory traces — use
/// [`compute_gap_timeline`] as the fallback then.
#[must_use]
pub fn gap_timeline_from_events(events: &[TraceEvent]) -> GapTimeline {
    let points = events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::GapSample {
                t,
                lower_bound,
                cost,
            } => Some(GapPoint {
                t,
                lower_bound,
                cost,
            }),
            _ => None,
        })
        .collect();
    GapTimeline { points }
}

/// Recomputes the gap timeline of any trace (with or without recorded
/// `GapSample` events) by replaying it through the [`GapProbe`] state
/// machine against `catalog`. Recorded samples in the input are ignored,
/// so the result is exactly what a live gap probe would have produced.
#[must_use]
pub fn compute_gap_timeline(events: &[TraceEvent], catalog: &Catalog) -> GapTimeline {
    let mut probe = GapProbe::new(catalog, crate::probe::NoProbe);
    for e in events {
        probe.record(e);
    }
    probe.finish();
    probe.into_timeline()
}

/// A probe adapter that forwards every event to `inner` and appends one
/// `GapSample` per distinct timestamp (see the module docs).
#[derive(Debug)]
pub struct GapProbe<P> {
    inner: P,
    ilb: IncrementalLowerBound,
    catalog: Catalog,
    /// Settled cost from `CostAccrual` events.
    closed_cost: Cost,
    /// Open busy spans: machine → (opened at, rate).
    open_spans: BTreeMap<MachineId, (TimePoint, u64)>,
    /// Active jobs and their sizes (arrived, not departed/dropped).
    active: HashMap<JobId, u64>,
    /// The timestamp whose sample is still held back.
    pending_t: Option<TimePoint>,
    timeline: GapTimeline,
    error: Option<String>,
}

impl<P: Probe> GapProbe<P> {
    /// Wraps `inner`, gauging against `catalog`.
    #[must_use]
    pub fn new(catalog: &Catalog, inner: P) -> Self {
        GapProbe {
            inner,
            ilb: IncrementalLowerBound::new(catalog),
            catalog: catalog.clone(),
            closed_cost: 0,
            open_spans: BTreeMap::new(),
            active: HashMap::new(),
            pending_t: None,
            timeline: GapTimeline::default(),
            error: None,
        }
    }

    /// The gap timeline sampled so far.
    #[must_use]
    pub fn timeline(&self) -> &GapTimeline {
        &self.timeline
    }

    /// Consumes the probe, returning its timeline.
    #[must_use]
    pub fn into_timeline(self) -> GapTimeline {
        self.timeline
    }

    /// Consumes the probe, returning the wrapped probe and the timeline.
    #[must_use]
    pub fn into_parts(self) -> (P, GapTimeline) {
        (self.inner, self.timeline)
    }

    /// The exact (`u128`) lower bound accumulated so far.
    #[must_use]
    pub fn lower_bound(&self) -> Cost {
        self.ilb.accumulated()
    }

    /// The exact (`u128`) cost accrued up to time `t`.
    #[must_use]
    pub fn accrued_cost(&self, t: TimePoint) -> Cost {
        let open: Cost = self
            .open_spans
            .values()
            .map(|&(opened_at, rate)| u128::from(t.saturating_sub(opened_at)) * u128::from(rate))
            .sum();
        self.closed_cost + open
    }

    /// The first inconsistency hit while folding events (`None` when the
    /// stream was well-formed). The probe keeps running past errors; the
    /// gauges are best-effort from that point on.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    fn note_error(&mut self, context: &str, e: impl std::fmt::Display) {
        if self.error.is_none() {
            self.error = Some(format!("{context}: {e}"));
        }
    }

    fn emit_sample(&mut self, t: TimePoint) {
        let point = GapPoint {
            t,
            lower_bound: sat_u64(self.ilb.accumulated()),
            cost: sat_u64(self.accrued_cost(t)),
        };
        self.timeline.points.push(point);
        self.inner.on_gap_sample(t, point.lower_bound, point.cost);
    }

    fn rate_of(&self, machine_type: bshm_core::machine::TypeIndex) -> u64 {
        self.catalog
            .types()
            .get(machine_type.0)
            .map_or(0, |t| t.rate)
    }

    fn fold(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Arrival { t, job, size } => {
                self.active.insert(job, size);
                if let Err(e) = self.ilb.arrive(t, size) {
                    self.note_error("gap probe: arrival", e);
                }
            }
            TraceEvent::Departure { t, job, .. } => {
                if let Some(size) = self.active.remove(&job) {
                    if let Err(e) = self.ilb.depart(t, size) {
                        self.note_error("gap probe: departure", e);
                    }
                }
            }
            TraceEvent::MachineOpen {
                t,
                machine,
                machine_type,
            } => {
                let rate = self.rate_of(machine_type);
                self.open_spans.insert(machine, (t, rate));
            }
            TraceEvent::CostAccrual {
                machine,
                busy,
                rate,
                ..
            } => {
                self.closed_cost += u128::from(busy) * u128::from(rate);
                self.open_spans.remove(&machine);
            }
            TraceEvent::MachineClose { machine, .. } | TraceEvent::MachineCrash { machine, .. } => {
                self.open_spans.remove(&machine);
            }
            TraceEvent::JobRecovery {
                t,
                to,
                machine_type,
                ..
            } => {
                // The job stays active (same size, same demand); make sure
                // its recovery machine's span is accruing.
                let rate = self.rate_of(machine_type);
                self.open_spans.entry(to).or_insert((t, rate));
            }
            TraceEvent::JobDropped { t, job, .. } => {
                // A dropped job stops demanding capacity: clip its
                // interval at the drop instant.
                if let Some(size) = self.active.remove(&job) {
                    if let Err(e) = self.ilb.depart(t, size) {
                        self.note_error("gap probe: drop", e);
                    }
                }
            }
            // Placements do not move load (the arrival already did);
            // decision x-rays, recorded samples and alerts are gauges,
            // not state.
            TraceEvent::Placement { .. }
            | TraceEvent::Decision { .. }
            | TraceEvent::GapSample { .. }
            | TraceEvent::Alert { .. }
            | TraceEvent::TenantLifecycle { .. }
            | TraceEvent::Degradation { .. } => {}
        }
    }
}

impl<P: Probe> Probe for GapProbe<P> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &TraceEvent) {
        // Recorded samples and alerts pass through untouched: re-emitting
        // or folding them would duplicate gauges when replaying a
        // gap-aware (or health-aware) trace.
        if matches!(
            event,
            TraceEvent::GapSample { .. } | TraceEvent::Alert { .. }
        ) {
            self.inner.record(event);
            return;
        }
        let t = event.time();
        if let Some(pt) = self.pending_t {
            if t > pt {
                self.emit_sample(pt);
            }
        }
        self.inner.record(event);
        self.fold(event);
        self.pending_t = Some(t);
    }

    fn finish(&mut self) {
        if let Some(pt) = self.pending_t.take() {
            self.emit_sample(pt);
        }
        self.inner.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Collector;
    use crate::replay::synthesize;
    use bshm_core::instance::Instance;
    use bshm_core::job::Job;
    use bshm_core::lower_bound::lower_bound;
    use bshm_core::machine::{MachineType, TypeIndex};
    use bshm_core::schedule::Schedule;
    use bshm_core::schedule_cost;

    fn catalog() -> Catalog {
        Catalog::new(vec![MachineType::new(4, 1), MachineType::new(16, 2)]).unwrap()
    }

    fn setup() -> (Instance, Schedule) {
        let jobs = vec![
            Job::new(0, 2, 0, 10),
            Job::new(1, 2, 5, 15),
            Job::new(2, 10, 0, 20),
        ];
        let instance = Instance::new(jobs, catalog()).unwrap();
        let mut s = Schedule::new();
        let m0 = s.add_machine(TypeIndex(0), "small");
        s.assign(m0, JobId(0));
        s.assign(m0, JobId(1));
        let m1 = s.add_machine(TypeIndex(1), "big");
        s.assign(m1, JobId(2));
        (instance, s)
    }

    #[test]
    fn samples_close_each_timestamp_and_stay_sorted() {
        let (inst, s) = setup();
        let mut probe = GapProbe::new(inst.catalog(), Collector::default());
        synthesize(&s, &inst, &mut probe);
        assert_eq!(probe.error(), None);
        let (collector, timeline) = probe.into_parts();
        // Event times: 0, 5, 10, 15, 20 → five samples.
        let ts: Vec<TimePoint> = timeline.points.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0, 5, 10, 15, 20]);
        // The emitted stream stays time-sorted with departure-side events
        // ahead of arrival-side ones at every timestamp.
        let times: Vec<TimePoint> = collector.events.iter().map(TraceEvent::time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        for w in collector.events.windows(2) {
            if w[0].time() == w[1].time() {
                assert!(
                    w[0].is_departure_side() >= w[1].is_departure_side(),
                    "{w:?}"
                );
            }
        }
        // And the collector holds exactly one GapSample per timestamp.
        let samples = gap_timeline_from_events(&collector.events);
        assert_eq!(samples.points, timeline.points);
    }

    #[test]
    fn final_sample_matches_full_sweep_and_cost() {
        let (inst, s) = setup();
        let mut probe = GapProbe::new(inst.catalog(), Collector::default());
        synthesize(&s, &inst, &mut probe);
        assert_eq!(probe.lower_bound(), lower_bound(&inst));
        let last = *probe.timeline().final_point().unwrap();
        assert_eq!(u128::from(last.lower_bound), lower_bound(&inst));
        assert_eq!(u128::from(last.cost), schedule_cost(&s, &inst));
        assert!(probe.timeline().final_ratio().unwrap() >= 1.0);
        assert!(probe.timeline().max_ratio() >= 1.0);
    }

    #[test]
    fn computed_fallback_equals_live_gauges() {
        let (inst, s) = setup();
        // A pre-gap trace: plain collector, no GapSample events.
        let mut plain = Collector::default();
        synthesize(&s, &inst, &mut plain);
        assert!(gap_timeline_from_events(&plain.events).points.is_empty());
        // Live gauges from a gap probe over the same schedule.
        let mut probe = GapProbe::new(inst.catalog(), Collector::default());
        synthesize(&s, &inst, &mut probe);
        let live = probe.into_timeline();
        // The fallback recomputation over the pre-gap trace agrees.
        let computed = compute_gap_timeline(&plain.events, inst.catalog());
        assert_eq!(computed.points, live.points);
        // Recomputing over the gap-aware trace ignores recorded samples
        // and still agrees.
        let mut probe2 = GapProbe::new(inst.catalog(), Collector::default());
        synthesize(&s, &inst, &mut probe2);
        let (gap_collector, _) = probe2.into_parts();
        let recomputed = compute_gap_timeline(&gap_collector.events, inst.catalog());
        assert_eq!(recomputed.points, live.points);
    }

    #[test]
    fn malformed_streams_surface_an_error_not_a_panic() {
        let cat = catalog();
        let mut probe = GapProbe::new(&cat, Collector::default());
        probe.record(&TraceEvent::Arrival {
            t: 5,
            job: JobId(0),
            size: 2,
        });
        // Time goes backwards: noted, not fatal.
        probe.record(&TraceEvent::Arrival {
            t: 3,
            job: JobId(1),
            size: 2,
        });
        probe.finish();
        assert!(probe.error().unwrap().contains("precedes"));
    }
}
