//! Deterministic per-job cost attribution.
//!
//! Busy-time cost is incurred by *machines* (rate × busy ticks), but
//! accountability questions — "which arrivals actually forced machines
//! open?" — need the cost charged back to *jobs*. [`CostLedger`] folds a
//! trace into exactly that, under a fixed sharing rule:
//!
//! 1. **Opener pays for machine opens.** A busy span is divided into
//!    segments at every occupancy change on the machine. The *opening
//!    segment* — from the span's open until the first occupancy change —
//!    is charged entirely to the job that opened the machine. That job's
//!    arrival is why the machine is running at all.
//! 2. **Proportional occupancy for extensions.** Every later segment of
//!    the span is shared among the jobs occupying the machine during it,
//!    proportionally to their sizes, with the integer remainder
//!    distributed by largest fractional share (ties to the smallest job
//!    id). Each occupant extends the span it sits in, so each pays its
//!    share of the extension.
//!
//! The invariant — checked by the property suite over every algorithm —
//! is **exact integer equality**: the attributed costs sum to precisely
//! the total traced cost (`Σ CostAccrual busy × rate`), never a tick more
//! or less. The rule is deterministic, so the same trace always yields
//! the same ledger.
//!
//! Fault traces are handled too: a crash's span is already closed (and
//! charged) by its preceding `CostAccrual`, recovered jobs start charging
//! on their recovery machine, and dropped jobs simply stop accruing.

use crate::event::TraceEvent;
use bshm_core::cost::Cost;
use bshm_core::job::JobId;
use bshm_core::schedule::MachineId;
use bshm_core::time::TimePoint;
use std::collections::{BTreeMap, HashMap};

/// One constant-occupancy slice of a busy span.
#[derive(Clone, Debug)]
struct Segment {
    /// Slice length in ticks.
    len: u64,
    /// Jobs on the machine during the slice, with their sizes.
    occupants: Vec<(JobId, u64)>,
}

/// The in-progress busy span of one machine.
#[derive(Clone, Debug)]
struct SpanState {
    /// Start of the segment currently accruing.
    seg_start: TimePoint,
    /// The job charged for the opening segment (the first job placed on
    /// the freshly opened machine).
    opener: Option<JobId>,
    /// Finished segments, oldest first.
    segments: Vec<Segment>,
    /// Current occupants with their sizes.
    occupants: BTreeMap<JobId, u64>,
}

impl SpanState {
    fn new(t: TimePoint) -> Self {
        SpanState {
            seg_start: t,
            opener: None,
            segments: Vec::new(),
            occupants: BTreeMap::new(),
        }
    }

    /// Closes the segment accruing up to `t` (no-op for zero length).
    fn cut(&mut self, t: TimePoint) {
        if t > self.seg_start {
            self.segments.push(Segment {
                len: t - self.seg_start,
                occupants: self.occupants.iter().map(|(&j, &s)| (j, s)).collect(),
            });
        }
        self.seg_start = t;
    }
}

/// Folds a trace into per-job attributed costs (see the module docs for
/// the sharing rule). Feed events in emission order via
/// [`CostLedger::observe`]; totals settle as each `CostAccrual` arrives.
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    /// Job sizes learned from `Arrival` events.
    sizes: HashMap<JobId, u64>,
    /// Open busy spans by machine.
    spans: HashMap<MachineId, SpanState>,
    /// Attributed cost per job.
    attributed: BTreeMap<JobId, Cost>,
    /// Total traced cost (`Σ CostAccrual busy × rate`).
    total: Cost,
    /// Cost that could not be pinned on any job (0 for well-formed
    /// traces; non-zero only for corrupt inputs, and still counted so the
    /// ledger never loses a tick).
    unattributed: Cost,
}

impl CostLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Builds a ledger from a full event stream.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut ledger = CostLedger::new();
        for e in events {
            ledger.observe(e);
        }
        ledger
    }

    /// Attributed cost per job, in job-id order.
    #[must_use]
    pub fn attributed(&self) -> &BTreeMap<JobId, Cost> {
        &self.attributed
    }

    /// Total traced cost settled so far.
    #[must_use]
    pub fn total(&self) -> Cost {
        self.total
    }

    /// Sum of all per-job attributed costs. Equals
    /// [`CostLedger::total`] minus [`CostLedger::unattributed`], exactly.
    #[must_use]
    pub fn attributed_sum(&self) -> Cost {
        self.attributed.values().sum()
    }

    /// Cost not pinned on any job — 0 for well-formed traces.
    #[must_use]
    pub fn unattributed(&self) -> Cost {
        self.unattributed
    }

    /// The cost attributed to one job (0 if it never paid anything).
    #[must_use]
    pub fn job_cost(&self, job: JobId) -> Cost {
        self.attributed.get(&job).copied().unwrap_or(0)
    }

    /// `(job, attributed cost)` rows sorted by descending cost, ties by
    /// ascending job id — the attribution table the gap report prints.
    #[must_use]
    pub fn table(&self) -> Vec<(JobId, Cost)> {
        let mut rows: Vec<(JobId, Cost)> = self.attributed.iter().map(|(&j, &c)| (j, c)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Folds one event into the ledger.
    pub fn observe(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Arrival { job, size, .. } => {
                self.sizes.insert(job, size);
            }
            TraceEvent::MachineOpen { t, machine, .. } => {
                self.spans.insert(machine, SpanState::new(t));
            }
            TraceEvent::Placement {
                t, job, machine, ..
            } => {
                let size = self.sizes.get(&job).copied().unwrap_or(0);
                if let Some(span) = self.spans.get_mut(&machine) {
                    span.cut(t);
                    let was_empty = span.occupants.is_empty();
                    span.occupants.insert(job, size);
                    if span.opener.is_none() && was_empty {
                        span.opener = Some(job);
                    }
                }
            }
            TraceEvent::Departure { t, job, machine } => {
                if let Some(span) = self.spans.get_mut(&machine) {
                    span.cut(t);
                    span.occupants.remove(&job);
                }
            }
            TraceEvent::CostAccrual {
                t,
                machine,
                busy,
                rate,
                ..
            } => {
                let span_cost = u128::from(busy) * u128::from(rate);
                self.total += span_cost;
                match self.spans.remove(&machine) {
                    Some(mut span) => {
                        span.cut(t);
                        self.settle(&span, span_cost, rate);
                    }
                    // A settled span with no recorded open (corrupt or
                    // truncated trace): never lose the cost.
                    None => self.unattributed += span_cost,
                }
            }
            // The accrual above already settled and dropped the span.
            TraceEvent::MachineClose { machine, .. } => {
                self.spans.remove(&machine);
            }
            // A crash's span was closed (and charged) by its preceding
            // CostAccrual + MachineClose pair.
            TraceEvent::MachineCrash { machine, .. } => {
                self.spans.remove(&machine);
            }
            TraceEvent::JobRecovery {
                t, job, from, to, ..
            } => {
                let size = self.sizes.get(&job).copied().unwrap_or(0);
                if let Some(span) = self.spans.get_mut(&from) {
                    span.cut(t);
                    span.occupants.remove(&job);
                }
                if let Some(span) = self.spans.get_mut(&to) {
                    span.cut(t);
                    let was_empty = span.occupants.is_empty();
                    span.occupants.insert(job, size);
                    if span.opener.is_none() && was_empty {
                        span.opener = Some(job);
                    }
                } else {
                    // Recovery onto a machine whose open the trace did not
                    // record separately: the recovered job is its opener.
                    let mut span = SpanState::new(t);
                    span.opener = Some(job);
                    span.occupants.insert(job, size);
                    self.spans.insert(to, span);
                }
            }
            // Dropped jobs stop accruing; their past segments were already
            // cut by the crash/departure path. Gap samples, decision
            // x-rays, SLO alerts and service-lifecycle markers are gauges.
            TraceEvent::JobDropped { .. }
            | TraceEvent::Decision { .. }
            | TraceEvent::GapSample { .. }
            | TraceEvent::Alert { .. }
            | TraceEvent::TenantLifecycle { .. }
            | TraceEvent::Degradation { .. } => {}
        }
    }

    /// Distributes one settled span's cost over its segments: the opening
    /// segment to the opener, every extension proportionally by occupant
    /// size. The last segment takes the exact remainder so the span's
    /// charges always sum to `span_cost`.
    fn settle(&mut self, span: &SpanState, span_cost: Cost, rate: u64) {
        if span_cost == 0 {
            return;
        }
        if span.segments.is_empty() {
            // Nothing recorded about who was on the machine (corrupt
            // trace): the cost still has to land somewhere.
            match span.opener {
                Some(j) => *self.attributed.entry(j).or_insert(0) += span_cost,
                None => self.unattributed += span_cost,
            }
            return;
        }
        let mut remaining = span_cost;
        let last = span.segments.len() - 1;
        for (i, seg) in span.segments.iter().enumerate() {
            let seg_cost = if i == last {
                remaining
            } else {
                (u128::from(rate) * u128::from(seg.len)).min(remaining)
            };
            remaining -= seg_cost;
            if seg_cost == 0 {
                continue;
            }
            if i == 0 {
                if let Some(j) = span.opener {
                    *self.attributed.entry(j).or_insert(0) += seg_cost;
                    continue;
                }
            }
            self.charge_proportionally(seg, seg_cost, span.opener);
        }
    }

    /// Splits `seg_cost` over the segment's occupants proportionally to
    /// size, handing the integer remainder out by largest fractional
    /// share (ties to the smallest job id).
    fn charge_proportionally(&mut self, seg: &Segment, seg_cost: Cost, opener: Option<JobId>) {
        if seg.occupants.is_empty() {
            match opener {
                Some(j) => *self.attributed.entry(j).or_insert(0) += seg_cost,
                None => self.unattributed += seg_cost,
            }
            return;
        }
        // Unknown (zero) sizes weigh 1 so a malformed trace still splits.
        let weights: Vec<(JobId, u128)> = seg
            .occupants
            .iter()
            .map(|&(j, s)| (j, u128::from(s.max(1))))
            .collect();
        let total_weight: u128 = weights.iter().map(|&(_, w)| w).sum();
        let mut shares: Vec<(JobId, Cost, u128)> = weights
            .iter()
            .map(|&(j, w)| {
                let base = seg_cost * w / total_weight;
                let frac = seg_cost * w % total_weight;
                (j, base, frac)
            })
            .collect();
        let distributed: Cost = shares.iter().map(|&(_, b, _)| b).sum();
        let mut remainder = seg_cost - distributed;
        // Largest remainder first; ties to the smallest job id.
        shares.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        for share in &mut shares {
            if remainder == 0 {
                break;
            }
            share.1 += 1;
            remainder -= 1;
        }
        for (j, base, _) in shares {
            if base > 0 {
                *self.attributed.entry(j).or_insert(0) += base;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Collector;
    use crate::replay::synthesize;
    use bshm_core::instance::Instance;
    use bshm_core::job::Job;
    use bshm_core::machine::{Catalog, MachineType, TypeIndex};
    use bshm_core::schedule::Schedule;
    use bshm_core::schedule_cost;

    fn catalog() -> Catalog {
        Catalog::new(vec![MachineType::new(4, 1), MachineType::new(16, 2)]).unwrap()
    }

    #[test]
    fn opener_pays_then_proportional() {
        // One machine (rate 1): job 0 opens at t=0, job 1 joins at t=4,
        // job 0 leaves at t=6, job 1 leaves at t=10.
        let jobs = vec![Job::new(0, 2, 0, 6), Job::new(1, 2, 4, 10)];
        let inst = Instance::new(jobs, catalog()).unwrap();
        let mut s = Schedule::new();
        let m = s.add_machine(TypeIndex(0), "m");
        s.assign(m, JobId(0));
        s.assign(m, JobId(1));
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let ledger = CostLedger::from_events(&c.events);
        // Span [0,10) at rate 1 → total 10. Opening segment [0,4) → job 0
        // pays 4. Extension [4,6): both jobs, equal sizes → 1 each.
        // Extension [6,10): job 1 alone → 4.
        assert_eq!(ledger.total(), 10);
        assert_eq!(ledger.job_cost(JobId(0)), 5);
        assert_eq!(ledger.job_cost(JobId(1)), 5);
        assert_eq!(ledger.attributed_sum(), ledger.total());
        assert_eq!(ledger.unattributed(), 0);
        assert_eq!(u128::from(10u64), schedule_cost(&s, &inst));
    }

    #[test]
    fn remainder_goes_to_largest_fractional_share() {
        // Sizes 3 and 1 share a 7-tick segment cost: 7·3/4 = 5 rem 1,
        // 7·1/4 = 1 rem 3 → the size-1 job has the larger fraction and
        // takes the leftover tick: 5 and 2.
        let seg = Segment {
            len: 7,
            occupants: vec![(JobId(0), 3), (JobId(1), 1)],
        };
        let mut ledger = CostLedger::new();
        ledger.charge_proportionally(&seg, 7, None);
        assert_eq!(ledger.job_cost(JobId(0)), 5);
        assert_eq!(ledger.job_cost(JobId(1)), 2);
    }

    #[test]
    fn exactness_over_a_multi_machine_schedule() {
        let jobs = vec![
            Job::new(0, 2, 0, 10),
            Job::new(1, 2, 5, 15),
            Job::new(2, 10, 0, 20),
            Job::new(3, 4, 30, 40),
        ];
        let inst = Instance::new(jobs, catalog()).unwrap();
        let mut s = Schedule::new();
        let m0 = s.add_machine(TypeIndex(0), "small");
        s.assign(m0, JobId(0));
        s.assign(m0, JobId(1));
        s.assign(m0, JobId(3));
        let m1 = s.add_machine(TypeIndex(1), "big");
        s.assign(m1, JobId(2));
        let mut c = Collector::default();
        synthesize(&s, &inst, &mut c);
        let ledger = CostLedger::from_events(&c.events);
        assert_eq!(ledger.total(), schedule_cost(&s, &inst));
        assert_eq!(ledger.attributed_sum(), ledger.total());
        assert_eq!(ledger.unattributed(), 0);
        // Every assigned job was charged something (each forces busy time).
        for id in [0u32, 1, 2, 3] {
            assert!(ledger.job_cost(JobId(id)) > 0, "job {id} paid nothing");
        }
        // Table is sorted by descending cost.
        let table = ledger.table();
        for w in table.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn orphan_accrual_is_counted_not_lost() {
        // A CostAccrual with no recorded span still lands in the total.
        let e = TraceEvent::CostAccrual {
            t: 5,
            machine: MachineId(9),
            machine_type: TypeIndex(0),
            busy: 5,
            rate: 3,
        };
        let mut ledger = CostLedger::new();
        ledger.observe(&e);
        assert_eq!(ledger.total(), 15);
        assert_eq!(ledger.unattributed(), 15);
        assert_eq!(ledger.attributed_sum(), 0);
    }
}
