//! A labeled metrics registry: counter/gauge/histogram families keyed by
//! label sets.
//!
//! The flat [`Metrics`] struct aggregates one run of one algorithm; the
//! [`Registry`] is the layer above it — it holds many label combinations
//! (`algorithm`, `workload`, `size_class`, …) per metric family and
//! renders them as one Prometheus exposition. [`Registry::absorb_metrics`]
//! subsumes the flat recorder: it converts a finished [`Metrics`] into
//! labeled families, so merging several runs is just absorbing each into
//! the same registry.
//!
//! All mutation goes through the typed API ([`Registry::counter_add`],
//! [`Registry::gauge_set`], [`Registry::histogram_merge`]); a name used
//! with two different kinds is an error, never a silent overwrite. The
//! `no-raw-metric` lint (see `bshm-analyze`) keeps ad-hoc gauge mutation
//! out of the rest of the workspace.

use crate::event::AlertReason;
use crate::prometheus::{escape_label, fmt_value};
use crate::recorder::{
    decision_ns_bucket_bounds, ops_bucket_bounds, utilization_bucket_bounds, Metrics,
    DECISION_NS_BUCKETS, OPS_BUCKETS, UTILIZATION_BUCKETS,
};
use bshm_core::ops::RejectReason;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A sorted, deduplicated label set (`key → value`).
pub type Labels = BTreeMap<String, String>;

/// Builds a [`Labels`] set from `(key, value)` pairs.
#[must_use]
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// The kind of a metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64` count.
    Counter,
    /// Instantaneous `f64` value.
    Gauge,
    /// Bucketed distribution with exact `_sum`/`_count`.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A registry mutation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// A family name was reused with a different kind.
    KindMismatch {
        /// The family name.
        name: String,
        /// The kind it was registered with.
        registered: &'static str,
        /// The kind the call asked for.
        requested: &'static str,
    },
    /// A metric name is not valid for Prometheus exposition.
    BadName {
        /// The offending name.
        name: String,
    },
    /// Two histograms for the same series disagree on bucket bounds.
    BucketMismatch {
        /// The family name.
        name: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::KindMismatch {
                name,
                registered,
                requested,
            } => write!(
                f,
                "metric family {name:?} is a {registered}, not a {requested}"
            ),
            RegistryError::BadName { name } => write!(f, "invalid metric name {name:?}"),
            RegistryError::BucketMismatch { name } => {
                write!(f, "histogram {name:?}: incompatible bucket bounds")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One histogram series: per-bucket counts, the buckets' upper bounds,
/// and the exact sum of observations.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramValue {
    /// Non-cumulative count per bucket (same length as `bounds`).
    pub counts: Vec<u64>,
    /// Upper bound of each bucket, in increasing order.
    pub bounds: Vec<f64>,
    /// Exact sum of all observed values.
    pub sum: f64,
}

impl HistogramValue {
    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[derive(Clone, Debug)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramValue),
}

impl Value {
    fn kind(&self) -> MetricKind {
        match self {
            Value::Counter(_) => MetricKind::Counter,
            Value::Gauge(_) => MetricKind::Gauge,
            Value::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Clone, Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    samples: BTreeMap<Labels, Value>,
}

/// A labeled metrics registry (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct Registry {
    families: BTreeMap<String, Family>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Number of registered families.
    #[must_use]
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether the registry has no families.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family(
        &mut self,
        name: &str,
        kind: MetricKind,
        help: &str,
    ) -> Result<&mut Family, RegistryError> {
        if !is_valid_name(name) {
            return Err(RegistryError::BadName {
                name: name.to_string(),
            });
        }
        let fam = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                help: help.to_string(),
                samples: BTreeMap::new(),
            });
        if fam.kind != kind {
            return Err(RegistryError::KindMismatch {
                name: name.to_string(),
                registered: fam.kind.as_str(),
                requested: kind.as_str(),
            });
        }
        Ok(fam)
    }

    /// Adds `delta` to the counter series `name{labels}` (registering the
    /// family with `help` on first use).
    ///
    /// # Errors
    /// [`RegistryError::KindMismatch`] if `name` is not a counter,
    /// [`RegistryError::BadName`] on an invalid metric name.
    pub fn counter_add(
        &mut self,
        name: &str,
        help: &str,
        labels: &Labels,
        delta: u64,
    ) -> Result<(), RegistryError> {
        let fam = self.family(name, MetricKind::Counter, help)?;
        match fam
            .samples
            .entry(labels.clone())
            .or_insert(Value::Counter(0))
        {
            Value::Counter(c) => *c = c.saturating_add(delta),
            other => {
                return Err(RegistryError::KindMismatch {
                    name: name.to_string(),
                    registered: other.kind().as_str(),
                    requested: "counter",
                })
            }
        }
        Ok(())
    }

    /// Sets the gauge series `name{labels}` to `value`.
    ///
    /// # Errors
    /// [`RegistryError::KindMismatch`] if `name` is not a gauge,
    /// [`RegistryError::BadName`] on an invalid metric name.
    pub fn gauge_set(
        &mut self,
        name: &str,
        help: &str,
        labels: &Labels,
        value: f64,
    ) -> Result<(), RegistryError> {
        let fam = self.family(name, MetricKind::Gauge, help)?;
        fam.samples.insert(labels.clone(), Value::Gauge(value));
        Ok(())
    }

    /// Takes the maximum of the gauge series `name{labels}` and `value`
    /// (for high-water-mark gauges like peak open machines).
    ///
    /// # Errors
    /// Same conditions as [`Registry::gauge_set`].
    pub fn gauge_max(
        &mut self,
        name: &str,
        help: &str,
        labels: &Labels,
        value: f64,
    ) -> Result<(), RegistryError> {
        let fam = self.family(name, MetricKind::Gauge, help)?;
        match fam
            .samples
            .entry(labels.clone())
            .or_insert(Value::Gauge(value))
        {
            Value::Gauge(g) => {
                if value > *g {
                    *g = value;
                }
            }
            other => {
                return Err(RegistryError::KindMismatch {
                    name: name.to_string(),
                    registered: other.kind().as_str(),
                    requested: "gauge",
                })
            }
        }
        Ok(())
    }

    /// Merges a bucketed histogram into the series `name{labels}`: counts
    /// add per bucket, sums add. An existing series must share the same
    /// bucket bounds.
    ///
    /// # Errors
    /// [`RegistryError::KindMismatch`] if `name` is not a histogram,
    /// [`RegistryError::BucketMismatch`] on differing bounds,
    /// [`RegistryError::BadName`] on an invalid metric name.
    pub fn histogram_merge(
        &mut self,
        name: &str,
        help: &str,
        labels: &Labels,
        hist: &HistogramValue,
    ) -> Result<(), RegistryError> {
        let fam = self.family(name, MetricKind::Histogram, help)?;
        match fam.samples.get_mut(labels) {
            None => {
                fam.samples
                    .insert(labels.clone(), Value::Histogram(hist.clone()));
            }
            Some(Value::Histogram(h)) => {
                if h.bounds.len() != hist.bounds.len()
                    || h.bounds
                        .iter()
                        .zip(&hist.bounds)
                        .any(|(a, b)| (a - b).abs() > 1e-12)
                {
                    return Err(RegistryError::BucketMismatch {
                        name: name.to_string(),
                    });
                }
                for (d, &s) in h.counts.iter_mut().zip(&hist.counts) {
                    *d = d.saturating_add(s);
                }
                h.sum += hist.sum;
            }
            Some(other) => {
                return Err(RegistryError::KindMismatch {
                    name: name.to_string(),
                    registered: other.kind().as_str(),
                    requested: "histogram",
                })
            }
        }
        Ok(())
    }

    /// Reads the counter series `name{labels}` (`None` if absent or not a
    /// counter).
    #[must_use]
    pub fn counter_value(&self, name: &str, labels: &Labels) -> Option<u64> {
        match self.families.get(name)?.samples.get(labels)? {
            Value::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Reads the gauge series `name{labels}` (`None` if absent or not a
    /// gauge).
    #[must_use]
    pub fn gauge_value(&self, name: &str, labels: &Labels) -> Option<f64> {
        match self.families.get(name)?.samples.get(labels)? {
            Value::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// Folds a finished flat [`Metrics`] into labeled families. Every
    /// series carries `algorithm` (from the metrics) and `workload`
    /// labels; per-type series add a `size_class` label holding the
    /// catalog type index.
    ///
    /// # Errors
    /// Propagates the first [`RegistryError`] (only possible when the
    /// registry already holds clashing family kinds).
    pub fn absorb_metrics(&mut self, m: &Metrics, workload: &str) -> Result<(), RegistryError> {
        let base = labels(&[("algorithm", &m.algorithm), ("workload", workload)]);
        let counters: [(&str, &str, u64); 15] = [
            ("bshm_arrivals_total", "Jobs arrived.", m.arrivals),
            ("bshm_departures_total", "Jobs departed.", m.departures),
            (
                "bshm_placements_total",
                "Placement decisions made.",
                m.placements,
            ),
            (
                "bshm_placements_opened_total",
                "Placements that created a new machine.",
                m.opened_placements,
            ),
            (
                "bshm_placements_reused_total",
                "Placements onto an existing machine.",
                m.reused_placements,
            ),
            (
                "bshm_machine_opens_total",
                "Machine idle-to-busy transitions.",
                m.opens,
            ),
            (
                "bshm_machine_closes_total",
                "Machine busy-to-idle transitions.",
                m.closes,
            ),
            (
                "bshm_cost_total",
                "Cost accrued over closed busy spans (rate times ticks).",
                m.traced_cost,
            ),
            (
                "bshm_machine_crashes_total",
                "Machines crashed/revoked by a fault plan.",
                m.crashes,
            ),
            (
                "bshm_jobs_displaced_total",
                "Active jobs displaced by machine crashes.",
                m.displaced_jobs,
            ),
            (
                "bshm_jobs_recovered_total",
                "Displaced jobs re-placed by a recovery policy.",
                m.recovered_jobs,
            ),
            (
                "bshm_jobs_dropped_total",
                "Jobs explicitly dropped with a reason (never silent).",
                m.dropped_jobs,
            ),
            (
                "bshm_recovery_latency_ns_total",
                "Wall-clock nanoseconds spent in recovery re-placement decisions.",
                m.recovery_ns_sum,
            ),
            (
                "bshm_gap_samples_total",
                "Gap-gauge samples observed (GapSample trace events).",
                m.gap_samples,
            ),
            (
                "bshm_alerts_total",
                "SLO alerts fired by the health plane (Alert trace events).",
                m.alerts,
            ),
        ];
        for (name, help, v) in counters {
            self.counter_add(name, help, &base, v)?;
        }
        for r in AlertReason::ALL {
            let mut l = base.clone();
            l.insert("reason".to_string(), r.as_str().to_string());
            self.counter_add(
                "bshm_alerts_by_reason_total",
                "SLO alerts fired per typed reason.",
                &l,
                m.alerts_by_reason.get(r.index()).copied().unwrap_or(0),
            )?;
        }

        let ops_counters: [(&str, &str, u64); 5] = [
            (
                "bshm_ops_decisions_total",
                "Placement decisions carrying deterministic operation counts.",
                m.ops.decisions,
            ),
            (
                "bshm_ops_machines_scanned_total",
                "Candidate machines examined across all decisions.",
                m.ops.machines_scanned,
            ),
            (
                "bshm_ops_capacity_comparisons_total",
                "Residual-capacity / fit comparisons evaluated across all decisions.",
                m.ops.capacity_comparisons,
            ),
            (
                "bshm_ops_machines_opened_total",
                "Decisions that created a new machine.",
                m.ops.machines_opened,
            ),
            (
                "bshm_ops_machines_reused_total",
                "Decisions that reused an existing machine.",
                m.ops.machines_reused,
            ),
        ];
        for (name, help, v) in ops_counters {
            self.counter_add(name, help, &base, v)?;
        }
        for r in RejectReason::ALL {
            let mut l = base.clone();
            l.insert("reason".to_string(), r.as_str().to_string());
            self.counter_add(
                "bshm_ops_rejections_total",
                "Candidates rejected per typed reason across all decisions.",
                &l,
                m.ops.rejected(r),
            )?;
        }

        for (i, &c) in m.cost_by_type.iter().enumerate() {
            let mut l = base.clone();
            l.insert("size_class".to_string(), i.to_string());
            self.counter_add(
                "bshm_cost_by_type_total",
                "Accrued cost per catalog machine type.",
                &l,
                c,
            )?;
        }
        let final_gauge = m.gauge_timeline.last();
        for i in 0..m.open_peak_by_type.len() {
            let mut l = base.clone();
            l.insert("size_class".to_string(), i.to_string());
            self.gauge_max(
                "bshm_open_machines_peak",
                "Peak simultaneously-busy machines per catalog type.",
                &l,
                f64::from(m.open_peak_by_type[i]),
            )?;
            let now = final_gauge
                .and_then(|g| g.busy.get(i))
                .copied()
                .unwrap_or(0);
            self.gauge_set(
                "bshm_open_machines",
                "Busy machines per catalog type at the last gauge transition.",
                &l,
                f64::from(now),
            )?;
        }

        self.gauge_set(
            "bshm_lower_bound",
            "Incrementally maintained busy-time lower bound at the last gap sample.",
            &base,
            m.last_lower_bound as f64,
        )?;
        self.gauge_set(
            "bshm_attributed_cost",
            "Cost accrued (and attributed to jobs) at the last gap sample.",
            &base,
            m.last_attributed_cost as f64,
        )?;
        self.gauge_set(
            "bshm_gap_ratio",
            "Cost over lower bound at the last gap sample (0 before the first).",
            &base,
            m.gap_ratio().unwrap_or(0.0),
        )?;
        self.gauge_max(
            "bshm_gap_ratio_max",
            "Largest cost-over-lower-bound ratio seen at any gap sample.",
            &base,
            m.max_gap_ratio,
        )?;

        self.histogram_merge(
            "bshm_decision_latency_ns",
            "Placement decision wall-clock latency in nanoseconds.",
            &base,
            &HistogramValue {
                counts: m.decision_ns_hist.clone(),
                bounds: (0..DECISION_NS_BUCKETS)
                    .map(|i| decision_ns_bucket_bounds(i).1)
                    .collect(),
                sum: m.decision_ns_sum as f64,
            },
        )?;
        self.histogram_merge(
            "bshm_machine_utilization",
            "Machine fill (load over capacity) right after each placement.",
            &base,
            &HistogramValue {
                counts: m.utilization_hist.clone(),
                bounds: (0..UTILIZATION_BUCKETS)
                    .map(|i| utilization_bucket_bounds(i).1)
                    .collect(),
                sum: m.utilization_sum,
            },
        )?;
        self.histogram_merge(
            "bshm_ops_per_decision",
            "Deterministic scan work (machines scanned plus comparisons) per placement decision.",
            &base,
            &HistogramValue {
                counts: m.ops_hist.clone(),
                bounds: (0..OPS_BUCKETS).map(|i| ops_bucket_bounds(i).1).collect(),
                sum: m.ops_sum as f64,
            },
        )?;
        Ok(())
    }

    /// Renders every family as Prometheus text exposition (validated by
    /// [`crate::prometheus::validate_exposition`] in the test suite).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for (ls, value) in &fam.samples {
                match value {
                    Value::Counter(c) => {
                        let _ =
                            writeln!(out, "{name}{} {}", render_labels(ls), fmt_value(*c as f64));
                    }
                    Value::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(ls), fmt_value(*g));
                    }
                    Value::Histogram(h) => {
                        let last = h.counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
                        let mut cum = 0u64;
                        for (i, &c) in h.counts.iter().enumerate().take(last.max(1)) {
                            cum += c;
                            let mut with_le = ls.clone();
                            with_le.insert("le".to_string(), fmt_value(h.bounds[i]));
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {}",
                                render_labels(&with_le),
                                fmt_value(cum as f64)
                            );
                        }
                        let total = h.count();
                        let mut with_le = ls.clone();
                        with_le.insert("le".to_string(), "+Inf".to_string());
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(&with_le),
                            fmt_value(total as f64)
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(ls), fmt_value(h.sum));
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(ls),
                            fmt_value(total as f64)
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_labels(ls: &Labels) -> String {
    if ls.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = ls
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;
    use crate::prometheus::validate_exposition;
    use crate::recorder::Recorder;
    use bshm_core::job::JobId;
    use bshm_core::machine::TypeIndex;
    use bshm_core::schedule::MachineId;

    fn run_metrics(alg: &str) -> Metrics {
        let mut rec = Recorder::new(alg, 2);
        rec.on_arrival(0, JobId(0), 2);
        rec.on_machine_open(0, MachineId(0), TypeIndex(0));
        rec.on_placement(0, JobId(0), MachineId(0), TypeIndex(0), true, 100, 2, 4);
        rec.on_departure(5, JobId(0), MachineId(0));
        rec.on_cost_accrual(5, MachineId(0), TypeIndex(0), 5, 2);
        rec.on_machine_close(5, MachineId(0), TypeIndex(0), 0);
        rec.on_gap_sample(5, 8, 10);
        rec.into_metrics().unwrap()
    }

    #[test]
    fn typed_mutation_and_reads() {
        let mut r = Registry::new();
        let l = labels(&[("algorithm", "greedy"), ("workload", "w1")]);
        r.counter_add("bshm_things_total", "Things.", &l, 3)
            .unwrap();
        r.counter_add("bshm_things_total", "Things.", &l, 2)
            .unwrap();
        assert_eq!(r.counter_value("bshm_things_total", &l), Some(5));
        r.gauge_set("bshm_level", "Level.", &l, 1.5).unwrap();
        r.gauge_max("bshm_level_max", "Peak level.", &l, 2.0)
            .unwrap();
        r.gauge_max("bshm_level_max", "Peak level.", &l, 1.0)
            .unwrap();
        assert_eq!(r.gauge_value("bshm_level", &l), Some(1.5));
        assert_eq!(r.gauge_value("bshm_level_max", &l), Some(2.0));
        // Kind clashes are errors, not overwrites.
        let err = r.gauge_set("bshm_things_total", "x", &l, 1.0).unwrap_err();
        assert!(matches!(err, RegistryError::KindMismatch { .. }));
        assert!(err.to_string().contains("counter"));
        assert!(r.counter_add("bad name", "x", &l, 1).is_err());
    }

    #[test]
    fn absorb_metrics_labels_every_series() {
        let mut r = Registry::new();
        r.absorb_metrics(&run_metrics("greedy"), "dec-poisson")
            .unwrap();
        r.absorb_metrics(&run_metrics("auto"), "dec-poisson")
            .unwrap();
        let g = labels(&[("algorithm", "greedy"), ("workload", "dec-poisson")]);
        assert_eq!(r.counter_value("bshm_arrivals_total", &g), Some(1));
        assert_eq!(r.counter_value("bshm_cost_total", &g), Some(10));
        assert_eq!(r.gauge_value("bshm_lower_bound", &g), Some(8.0));
        assert_eq!(r.gauge_value("bshm_attributed_cost", &g), Some(10.0));
        assert_eq!(r.gauge_value("bshm_gap_ratio", &g), Some(1.25));
        let mut per_type = g.clone();
        per_type.insert("size_class".to_string(), "0".to_string());
        assert_eq!(
            r.counter_value("bshm_cost_by_type_total", &per_type),
            Some(10)
        );
        assert_eq!(
            r.gauge_value("bshm_open_machines_peak", &per_type),
            Some(1.0)
        );
        // Both algorithms coexist as distinct label sets of one family.
        let a = labels(&[("algorithm", "auto"), ("workload", "dec-poisson")]);
        assert_eq!(r.counter_value("bshm_arrivals_total", &a), Some(1));
    }

    #[test]
    fn absorbing_the_same_run_twice_accumulates_counters() {
        let mut r = Registry::new();
        let m = run_metrics("greedy");
        r.absorb_metrics(&m, "w").unwrap();
        r.absorb_metrics(&m, "w").unwrap();
        let l = labels(&[("algorithm", "greedy"), ("workload", "w")]);
        assert_eq!(r.counter_value("bshm_arrivals_total", &l), Some(2));
        assert_eq!(r.counter_value("bshm_cost_total", &l), Some(20));
        // Gauges read the latest absorption, peaks stay maxed.
        assert_eq!(r.gauge_value("bshm_gap_ratio", &l), Some(1.25));
    }

    #[test]
    fn encode_is_valid_exposition_with_label_sets() {
        let mut r = Registry::new();
        r.absorb_metrics(&run_metrics("greedy"), "dec-poisson")
            .unwrap();
        let text = r.encode();
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE bshm_arrivals_total counter"));
        assert!(
            text.contains("bshm_arrivals_total{algorithm=\"greedy\",workload=\"dec-poisson\"} 1")
        );
        assert!(text.contains(
            "bshm_cost_by_type_total{algorithm=\"greedy\",size_class=\"0\",workload=\"dec-poisson\"} 10"
        ));
        assert!(text.contains("# TYPE bshm_decision_latency_ns histogram"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("bshm_gap_ratio{algorithm=\"greedy\",workload=\"dec-poisson\"} 1.25"));
    }

    #[test]
    fn histogram_bucket_mismatch_is_an_error() {
        let mut r = Registry::new();
        let l = labels(&[("algorithm", "a")]);
        let h1 = HistogramValue {
            counts: vec![1, 0],
            bounds: vec![1.0, 2.0],
            sum: 0.5,
        };
        let h2 = HistogramValue {
            counts: vec![1, 0],
            bounds: vec![1.0, 4.0],
            sum: 0.5,
        };
        r.histogram_merge("bshm_h", "H.", &l, &h1).unwrap();
        assert!(matches!(
            r.histogram_merge("bshm_h", "H.", &l, &h2),
            Err(RegistryError::BucketMismatch { .. })
        ));
        // Matching bounds merge counts and sums.
        r.histogram_merge("bshm_h", "H.", &l, &h1).unwrap();
        let text = r.encode();
        validate_exposition(&text).unwrap();
        assert!(text.contains("bshm_h_count{algorithm=\"a\"} 2"));
        assert!(text.contains("bshm_h_sum{algorithm=\"a\"} 1"));
    }

    #[test]
    fn label_values_with_quotes_backslashes_and_newlines_stay_escaped() {
        let mut r = Registry::new();
        let l = labels(&[("algorithm", "a\"b\\c\nd"), ("workload", "w")]);
        r.counter_add("bshm_things_total", "Things.", &l, 1)
            .unwrap();
        let text = r.encode();
        validate_exposition(&text).unwrap();
        assert!(text.contains("algorithm=\"a\\\"b\\\\c\\nd\""));
        // HELP + TYPE + one sample: a raw newline leaking from the label
        // value would add a fourth line break.
        assert_eq!(text.matches('\n').count(), 3);
    }

    #[test]
    fn histogram_family_merges_across_label_sets() {
        let mut r = Registry::new();
        let h = HistogramValue {
            counts: vec![1, 2],
            bounds: vec![1.0, 2.0],
            sum: 3.0,
        };
        let la = labels(&[("algorithm", "a")]);
        let lb = labels(&[("algorithm", "b")]);
        r.histogram_merge("bshm_h", "H.", &la, &h).unwrap();
        r.histogram_merge("bshm_h", "H.", &lb, &h).unwrap();
        r.histogram_merge("bshm_h", "H.", &la, &h).unwrap();
        let text = r.encode();
        validate_exposition(&text).unwrap();
        // Same label set accumulates; distinct label sets stay separate series.
        assert!(text.contains("bshm_h_count{algorithm=\"a\"} 6"));
        assert!(text.contains("bshm_h_sum{algorithm=\"a\"} 6"));
        assert!(text.contains("bshm_h_count{algorithm=\"b\"} 3"));
        // One family header serves every label set.
        assert_eq!(text.matches("# TYPE bshm_h histogram").count(), 1);
    }

    #[test]
    fn absorb_metrics_exports_ops_families() {
        let mut m = run_metrics("greedy");
        m.ops.decisions = 2;
        m.ops.machines_scanned = 5;
        m.ops.capacity_comparisons = 7;
        m.ops.rejected_capacity = 3;
        m.ops.machines_opened = 1;
        m.ops.machines_reused = 1;
        m.ops_hist[2] = 2;
        m.ops_sum = 12;
        let mut r = Registry::new();
        r.absorb_metrics(&m, "w1").unwrap();
        let text = r.encode();
        validate_exposition(&text).unwrap();
        let base = "algorithm=\"greedy\",workload=\"w1\"";
        assert!(text.contains(&format!("bshm_ops_decisions_total{{{base}}} 2")));
        assert!(text.contains(&format!("bshm_ops_machines_scanned_total{{{base}}} 5")));
        assert!(text.contains(&format!("bshm_ops_capacity_comparisons_total{{{base}}} 7")));
        // Labels render in sorted key order, so "reason" lands in the middle.
        assert!(text.contains(
            "bshm_ops_rejections_total{algorithm=\"greedy\",reason=\"capacity\",workload=\"w1\"} 3"
        ));
        assert!(text.contains(
            "bshm_ops_rejections_total{algorithm=\"greedy\",reason=\"window_expired\",workload=\"w1\"} 0"
        ));
        assert!(text.contains(&format!("bshm_ops_per_decision_count{{{base}}} 2")));
        assert!(text.contains(&format!("bshm_ops_per_decision_sum{{{base}}} 12")));
    }
}
