//! The analyzer's own acceptance gate, run as part of `cargo test`:
//!
//! 1. The committed workspace is clean — zero error-severity diagnostics.
//!    This is the same check CI runs via `cargo run -p bshm-analyze`, so a
//!    violation fails the test suite even before the CI job executes.
//! 2. Introducing a violation is actually caught (the gate is live, not
//!    vacuous): seeded fixtures trip each rule.
//! 3. The drift auditors fail on mutated copies of the synchronized
//!    artifacts — a new TraceEvent variant unknown to the replay checker,
//!    a dispatched-but-undocumented subcommand, a bumped schema version.

use bshm_analyze::{analyze_source, analyze_workspace, DriftInputs};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn committed_workspace_is_clean() {
    let report = analyze_workspace(&workspace_root()).expect("workspace analyzable");
    let rendered = report.render_human();
    assert_eq!(
        report.errors, 0,
        "lint/drift errors in committed tree:\n{rendered}"
    );
    assert_eq!(
        report.warnings, 0,
        "stale pragmas in committed tree:\n{rendered}"
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned",
        report.files_scanned
    );
}

#[test]
fn seeded_violations_are_caught() {
    // One fixture per rule, written as library-crate code (strict context).
    let cases: &[(&str, &str)] = &[
        ("no-panic", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"),
        ("no-panic", "fn f() { panic!(\"boom\"); }\n"),
        ("float-eq", "fn f(rate: f64) -> bool { rate == 0.5 }\n"),
        ("lossy-cast", "fn f(x: u64) -> u32 { x as u32 }\n"),
        (
            "wall-clock",
            "fn f() { let _t = std::time::Instant::now(); }\n",
        ),
        ("no-print", "fn f() { println!(\"dbg\"); }\n"),
    ];
    for (rule, src) in cases {
        let diags = analyze_source("crates/core/src/seeded.rs", src);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "fixture for {rule} produced {diags:?}"
        );
    }
    // The faults crate is a strict library crate too.
    let diags = analyze_source(
        "crates/faults/src/seeded.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == "no-panic"),
        "faults crate not strict: {diags:?}"
    );
    // no-raw-trace-write fires only in obs/sim, outside the sink module.
    let raw = "fn f(p: &std::path::Path) { let _ = std::fs::write(p, \"x\"); }\n";
    let diags = analyze_source("crates/obs/src/seeded.rs", raw);
    assert!(
        diags.iter().any(|d| d.rule == "no-raw-trace-write"),
        "raw trace write not caught: {diags:?}"
    );
    assert!(analyze_source("crates/obs/src/sink.rs", raw)
        .iter()
        .all(|d| d.rule != "no-raw-trace-write"));
}

#[test]
fn pragma_suppresses_seeded_violation() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // bshm-allow(no-panic): fixture\n";
    let diags = analyze_source("crates/core/src/seeded.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u32>.unwrap(); }\n}\n";
    let diags = analyze_source("crates/core/src/seeded.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn drift_auditor_fails_on_mutated_event_schema() {
    let root = workspace_root();
    let mut inputs = DriftInputs::load(&root).expect("artifacts readable");
    assert!(inputs.audit().is_empty(), "baseline drift audit must pass");

    // Add a TraceEvent variant the replay checker has never heard of.
    let marker = "pub enum TraceEvent {";
    assert!(inputs.event_rs.contains(marker), "event.rs changed shape");
    inputs.event_rs = inputs.event_rs.replace(
        marker,
        "pub enum TraceEvent {\n    PhantomVariantForDriftTest { t: u64 },",
    );
    let diags = inputs.audit();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "drift/trace-schema"
                && d.message.contains("PhantomVariantForDriftTest")),
        "mutated event.rs not caught: {diags:?}"
    );
}

#[test]
fn drift_auditor_fails_on_undocumented_subcommand() {
    let root = workspace_root();
    let mut inputs = DriftInputs::load(&root).expect("artifacts readable");
    inputs.commands_rs = inputs.commands_rs.replace(
        "match cmd.as_str() {",
        "match cmd.as_str() {\n        \"phantom-subcommand\" => run_phantom(),",
    );
    let diags = inputs.audit();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "drift/cli" && d.message.contains("phantom-subcommand")),
        "undocumented subcommand not caught: {diags:?}"
    );
}

#[test]
fn drift_auditor_fails_on_schema_version_bump() {
    let root = workspace_root();
    let mut inputs = DriftInputs::load(&root).expect("artifacts readable");
    let bumped = inputs.baseline_rs.replace(
        "pub const SCHEMA_VERSION: u64 = 5;",
        "pub const SCHEMA_VERSION: u64 = 6;",
    );
    assert_ne!(bumped, inputs.baseline_rs, "mutation must actually apply");
    inputs.baseline_rs = bumped;
    let diags = inputs.audit();
    assert!(
        diags.iter().any(|d| d.rule == "drift/bench-schema"),
        "schema bump not caught: {diags:?}"
    );
}
