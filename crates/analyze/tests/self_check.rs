//! The analyzer's own acceptance gate, run as part of `cargo test`:
//!
//! 1. The committed workspace is clean — zero error-severity diagnostics.
//!    This is the same check CI runs via `cargo run -p bshm-analyze`, so a
//!    violation fails the test suite even before the CI job executes.
//! 2. Introducing a violation is actually caught (the gate is live, not
//!    vacuous): seeded fixtures trip each rule.
//! 3. The drift auditors fail on mutated copies of the synchronized
//!    artifacts — a new TraceEvent variant unknown to the replay checker,
//!    a dispatched-but-undocumented subcommand, a bumped schema version,
//!    a rule missing from the committed `ANALYZE_RULES.json` manifest.
//! 4. The graph/taint layers hold their committed invariants on the real
//!    workspace: low unresolved fraction, zero concurrency-audit findings
//!    reachable from the solver entry points, and a seeded wall-clock →
//!    TraceEvent fixture fails analysis.

use bshm_analyze::{analyze_files, analyze_source, analyze_workspace_full, DriftInputs};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn committed_workspace_is_clean_and_fast() {
    // Generous wall-clock bound: the whole three-layer pass (lint rules,
    // item parse, call graph, taint, drift audits) must stay interactive
    // so pre-merge checks never become minutes-slow. Debug builds on a
    // loaded CI box run ~10x slower than release; 60s is ~20x headroom
    // over the observed debug-mode runtime.
    let started = std::time::Instant::now();
    let wa = analyze_workspace_full(&workspace_root()).expect("workspace analyzable");
    let elapsed = started.elapsed();
    let report = &wa.report;
    let rendered = report.render_human();
    assert_eq!(
        report.errors, 0,
        "lint/drift errors in committed tree:\n{rendered}"
    );
    assert_eq!(
        report.warnings, 0,
        "stale pragmas in committed tree:\n{rendered}"
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned",
        report.files_scanned
    );
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "analyze took {elapsed:?}; the graph passes made pre-merge checks too slow"
    );
}

#[test]
fn call_graph_unresolved_bucket_stays_small() {
    let wa = analyze_workspace_full(&workspace_root()).expect("workspace analyzable");
    let g = &wa.graph;
    // The workspace has ~1500 fns; a collapse in item parsing or call
    // resolution would show up as a tiny graph or a ballooning bucket.
    assert!(g.fns > 500, "only {} fns in the call graph", g.fns);
    assert!(g.edges > 1000, "only {} resolved edges", g.edges);
    assert!(
        g.unresolved_fraction < 0.15,
        "unresolved fraction {:.3} breached the committed threshold (sample: {:?})",
        g.unresolved_fraction,
        g.unresolved_sample
    );
}

#[test]
fn concurrency_audit_is_clean_on_solver_paths() {
    let wa = analyze_workspace_full(&workspace_root()).expect("workspace analyzable");
    let a = &wa.taint.audit;
    // The 12 algorithm decision paths all enter through non-test algos
    // fns; a shrunken entry set would make the zero-findings claim vacuous.
    assert!(a.entry_points >= 12, "only {} entry points", a.entry_points);
    assert!(
        a.reachable_fns > a.entry_points,
        "solver closure did not expand past its entry points"
    );
    assert_eq!(
        a.unordered_iter_reachable, 0,
        "unordered iteration reachable from solvers"
    );
    assert_eq!(
        a.interior_mutability_reachable, 0,
        "interior mutability reachable from solvers"
    );
    assert_eq!(a.shared_mutable_statics, 0, "static mut in library crates");
    // Every surviving suppression carries its reason into the artifact.
    assert!(wa.taint.suppressed.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn seeded_wall_clock_to_trace_event_path_fails_analysis() {
    // The ISSUE's acceptance fixture: wall-clock value flowing through a
    // helper into a TraceEvent emission must fail whole-workspace analysis
    // with a taint-path error (on top of the per-file wall-clock lint).
    let sources = vec![
        (
            "crates/sim/src/seeded_stamp.rs".to_string(),
            "pub fn seeded_stamp() -> u64 { elapsed_ns(std::time::Instant::now()) }\n\
             fn elapsed_ns(_t: u64) -> u64 { 0 }\n"
                .to_string(),
        ),
        (
            "crates/sim/src/seeded_emit.rs".to_string(),
            "pub fn seeded_emit(p: &mut Probe) { p.record(TraceEvent::Tick { t: seeded_stamp() }); }\n"
                .to_string(),
        ),
    ];
    let wa = analyze_files(&sources);
    assert!(wa.report.errors > 0, "fixture passed analysis");
    assert!(
        wa.report.diagnostics.iter().any(|d| d.rule == "taint-path"
            && d.file == "crates/sim/src/seeded_stamp.rs"
            && d.message.contains("wall-clock")),
        "no taint-path error: {:?}",
        wa.report.diagnostics
    );
}

#[test]
fn seeded_violations_are_caught() {
    // One fixture per rule, written as library-crate code (strict context).
    let cases: &[(&str, &str)] = &[
        ("no-panic", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"),
        ("no-panic", "fn f() { panic!(\"boom\"); }\n"),
        ("float-eq", "fn f(rate: f64) -> bool { rate == 0.5 }\n"),
        ("lossy-cast", "fn f(x: u64) -> u32 { x as u32 }\n"),
        (
            "wall-clock",
            "fn f() { let _t = std::time::Instant::now(); }\n",
        ),
        ("no-print", "fn f() { println!(\"dbg\"); }\n"),
    ];
    for (rule, src) in cases {
        let diags = analyze_source("crates/core/src/seeded.rs", src);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "fixture for {rule} produced {diags:?}"
        );
    }
    // The faults crate is a strict library crate too.
    let diags = analyze_source(
        "crates/faults/src/seeded.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == "no-panic"),
        "faults crate not strict: {diags:?}"
    );
    // no-raw-trace-write fires only in obs/sim, outside the sink module.
    let raw = "fn f(p: &std::path::Path) { let _ = std::fs::write(p, \"x\"); }\n";
    let diags = analyze_source("crates/obs/src/seeded.rs", raw);
    assert!(
        diags.iter().any(|d| d.rule == "no-raw-trace-write"),
        "raw trace write not caught: {diags:?}"
    );
    assert!(analyze_source("crates/obs/src/sink.rs", raw)
        .iter()
        .all(|d| d.rule != "no-raw-trace-write"));
}

#[test]
fn pragma_suppresses_seeded_violation() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // bshm-allow(no-panic): fixture\n";
    let diags = analyze_source("crates/core/src/seeded.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u32>.unwrap(); }\n}\n";
    let diags = analyze_source("crates/core/src/seeded.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn drift_auditor_fails_on_mutated_event_schema() {
    let root = workspace_root();
    let mut inputs = DriftInputs::load(&root).expect("artifacts readable");
    assert!(inputs.audit().is_empty(), "baseline drift audit must pass");

    // Add a TraceEvent variant the replay checker has never heard of.
    let marker = "pub enum TraceEvent {";
    assert!(inputs.event_rs.contains(marker), "event.rs changed shape");
    inputs.event_rs = inputs.event_rs.replace(
        marker,
        "pub enum TraceEvent {\n    PhantomVariantForDriftTest { t: u64 },",
    );
    let diags = inputs.audit();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "drift/trace-schema"
                && d.message.contains("PhantomVariantForDriftTest")),
        "mutated event.rs not caught: {diags:?}"
    );
}

#[test]
fn drift_auditor_fails_on_undocumented_subcommand() {
    let root = workspace_root();
    let mut inputs = DriftInputs::load(&root).expect("artifacts readable");
    inputs.commands_rs = inputs.commands_rs.replace(
        "match cmd.as_str() {",
        "match cmd.as_str() {\n        \"phantom-subcommand\" => run_phantom(),",
    );
    let diags = inputs.audit();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "drift/cli" && d.message.contains("phantom-subcommand")),
        "undocumented subcommand not caught: {diags:?}"
    );
}

#[test]
fn drift_auditor_fails_on_rules_manifest_drift() {
    let root = workspace_root();
    let mut inputs = DriftInputs::load(&root).expect("artifacts readable");
    assert!(inputs.audit().is_empty(), "baseline drift audit must pass");

    // Drop a registered rule from the committed manifest.
    let pruned = inputs.rules_manifest.replace("    \"no-panic\",\n", "");
    assert_ne!(
        pruned, inputs.rules_manifest,
        "mutation must actually apply"
    );
    inputs.rules_manifest = pruned;
    let diags = inputs.audit();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "drift/rules-manifest" && d.message.contains("no-panic")),
        "pruned manifest not caught: {diags:?}"
    );
}

#[test]
fn drift_auditor_fails_on_schema_version_bump() {
    let root = workspace_root();
    let mut inputs = DriftInputs::load(&root).expect("artifacts readable");
    let bumped = inputs.baseline_rs.replace(
        "pub const SCHEMA_VERSION: u64 = 6;",
        "pub const SCHEMA_VERSION: u64 = 7;",
    );
    assert_ne!(bumped, inputs.baseline_rs, "mutation must actually apply");
    inputs.baseline_rs = bumped;
    let diags = inputs.audit();
    assert!(
        diags.iter().any(|d| d.rule == "drift/bench-schema"),
        "schema bump not caught: {diags:?}"
    );
}
