//! Per-file analysis context: which crate a file belongs to, whether it is
//! library (shipping) code, and which lines are test-only.

use crate::lexer::{Tok, TokKind};

/// The five crates whose non-test code must be panic-free and cast-clean:
/// they implement the paper's exact cost accounting (and its fault-time
/// ledgers) and are linked into every consumer.
pub const LIBRARY_CRATES: [&str; 5] = ["core", "algos", "sim", "obs", "faults"];

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate directory name under `crates/` (`core`, `cli`, …), or the
    /// root package's pseudo-name `bshm` for top-level `src/`/`tests/`.
    pub crate_name: String,
    /// Whether the file is part of a strict library crate's `src/`.
    pub strict_library: bool,
    /// Whether the whole file is test/bench/example code.
    pub all_test: bool,
}

impl FileContext {
    /// Classifies a workspace-relative path.
    #[must_use]
    pub fn classify(path: &str) -> FileContext {
        let path = path.replace('\\', "/");
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = match parts.first() {
            Some(&"crates") => parts.get(1).copied().unwrap_or("").to_string(),
            _ => "bshm".to_string(),
        };
        let in_src = parts.contains(&"src");
        let all_test = parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples"));
        let strict_library = LIBRARY_CRATES.contains(&crate_name.as_str()) && in_src && !all_test;
        FileContext {
            path,
            crate_name,
            strict_library,
            all_test,
        }
    }
}

/// Returns, for each token index, whether it lies inside test-only code:
/// a `#[cfg(test)]` module, or a `#[test]`/`#[bench]` function.
///
/// Detection is token-level: an attribute containing both `cfg` and `test`
/// (or exactly `test`/`bench`) marks the next `mod`/`fn` item, whose body
/// braces are then matched to find the region. This is the same contract
/// `cargo test` compiles under, so lines it skips are exactly the lines
/// rustc strips from release builds.
#[must_use]
pub fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_punct("#") {
            i += 1;
            continue;
        }
        // Parse one attribute `#[ … ]` (or inner `#![ … ]`).
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct("!") {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct("[") {
            i += 1;
            continue;
        }
        let attr_start = j;
        let mut depth = 0i32;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                attr_idents.push(&t.text);
            }
            j += 1;
        }
        let _ = attr_start;
        let is_test_attr = match attr_idents.as_slice() {
            ["test"] | ["bench"] => true,
            ids => ids.contains(&"cfg") && ids.contains(&"test"),
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip further attributes to the item keyword.
        let mut k = j + 1;
        while k < toks.len() && toks[k].is_punct("#") {
            let mut d = 0i32;
            k += 1;
            while k < toks.len() {
                if toks[k].is_punct("[") {
                    d += 1;
                } else if toks[k].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        // The attributed item: everything to its matching close brace is
        // test code (covers `mod tests { … }`, `fn case() { … }`, and the
        // occasional `use` which has no braces and ends at `;`).
        let item_start = k;
        let mut d = 0i32;
        let mut end = item_start;
        let mut saw_brace = false;
        while end < toks.len() {
            let t = &toks[end];
            if t.is_punct("{") {
                d += 1;
                saw_brace = true;
            } else if t.is_punct("}") {
                d -= 1;
                if saw_brace && d == 0 {
                    break;
                }
            } else if t.is_punct(";") && !saw_brace {
                break;
            }
            end += 1;
        }
        for flag in in_test.iter_mut().take((end + 1).min(toks.len())).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn classify_paths() {
        let c = FileContext::classify("crates/core/src/time.rs");
        assert_eq!(c.crate_name, "core");
        assert!(c.strict_library);
        assert!(!c.all_test);

        let c = FileContext::classify("crates/algos/tests/substrate_properties.rs");
        assert!(!c.strict_library);
        assert!(c.all_test);

        let c = FileContext::classify("crates/cli/src/commands.rs");
        assert_eq!(c.crate_name, "cli");
        assert!(!c.strict_library);

        let c = FileContext::classify("src/lib.rs");
        assert_eq!(c.crate_name, "bshm");
        assert!(!c.strict_library);

        let c = FileContext::classify("crates/bench/benches/throughput.rs");
        assert!(c.all_test);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let toks = tokenize(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        let live_idx = toks.iter().position(|t| t.is_ident("live")).unwrap();
        let after_idx = toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(flags[unwrap_idx]);
        assert!(!flags[live_idx]);
        assert!(!flags[after_idx]);
    }

    #[test]
    fn test_fn_is_marked() {
        let src = "#[test]\nfn case() { assert!(x); }\nfn live() {}\n";
        let toks = tokenize(src);
        let flags = test_regions(&toks);
        let assert_idx = toks.iter().position(|t| t.is_ident("assert")).unwrap();
        let live_idx = toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(flags[assert_idx]);
        assert!(!flags[live_idx]);
    }

    #[test]
    fn stacked_attributes_still_detected() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn f() { y.unwrap(); } }\n";
        let toks = tokenize(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(flags[unwrap_idx]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(feature = \"extra\")]\nmod extra { fn f() { y.unwrap(); } }\n";
        let toks = tokenize(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!flags[unwrap_idx]);
    }
}
