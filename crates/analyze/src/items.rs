//! Layer 1 of the whole-workspace analysis: an item parser on top of the
//! lexer.
//!
//! [`parse_items`] walks one file's comment-free token stream and extracts
//! the items the call graph ([`crate::graph`]) and the taint engine
//! ([`crate::taint`]) need: functions (free fns, inherent/trait methods,
//! trait default bodies) with their body token ranges and inline-module
//! paths, `use` imports (groups and aliases expanded), type definitions
//! (`struct`/`enum`/`union` names, plus named-struct field types for the
//! unordered-collection heuristics), and `static` items with their
//! mutability and type tokens for the concurrency audit.
//!
//! This is deliberately not a Rust parser: it only tracks the brace
//! structure and the handful of item keywords, and it degrades gracefully
//! (an item it cannot make sense of is skipped, never mis-attributed).
//! Test regions are carried through from [`crate::context::test_regions`]
//! so downstream passes can ignore `#[cfg(test)]` code the way rustc's
//! release builds do.

use crate::lexer::Tok;

/// One function item: free fn, inherent/trait method, or trait default.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` type head for methods (`Schedule`, `DecOnline`),
    /// `None` for free functions.
    pub self_ty: Option<String>,
    /// Inline-module path within the file (`["tests"]`, `[]` at top level).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[start, end]` of the body braces in the file's
    /// comment-free stream; `None` for bodiless trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the `fn` token sits in a test region.
    pub is_test: bool,
    /// Whether the item carries a `pub` qualifier.
    pub is_pub: bool,
}

/// One binding introduced by a `use` declaration.
#[derive(Clone, Debug)]
pub struct UseItem {
    /// Full path segments (`["std", "collections", "HashMap"]`).
    pub segments: Vec<String>,
    /// The name the binding is visible as (alias if `as` was used).
    pub name: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// A named field and the identifier tokens of its type.
#[derive(Clone, Debug)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// Identifier tokens appearing in the type (`["HashMap", "JobId", "u64"]`).
    pub ty_idents: Vec<String>,
}

/// A `struct`/`enum`/`union` definition (fields only for named structs).
#[derive(Clone, Debug)]
pub struct TypeItem {
    /// Type name.
    pub name: String,
    /// Named fields (empty for tuple/unit structs, enums and unions).
    pub fields: Vec<FieldItem>,
    /// 1-based line of the defining keyword.
    pub line: u32,
}

/// A `static` item, the concurrency audit's main quarry.
#[derive(Clone, Debug)]
pub struct StaticItem {
    /// Static's name.
    pub name: String,
    /// Whether it is `static mut`.
    pub is_mut: bool,
    /// Identifier tokens of its type annotation.
    pub ty_idents: Vec<String>,
    /// 1-based line.
    pub line: u32,
    /// Whether it sits in a test region.
    pub is_test: bool,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Use bindings in source order.
    pub uses: Vec<UseItem>,
    /// Type definitions in source order.
    pub types: Vec<TypeItem>,
    /// Static items in source order.
    pub statics: Vec<StaticItem>,
}

/// Keywords that can prefix an item and are skipped when looking for the
/// item keyword proper.
const ITEM_QUALIFIERS: [&str; 6] = ["pub", "const", "unsafe", "async", "extern", "default"];

struct Parser<'a> {
    toks: &'a [Tok],
    mask: &'a [bool],
    out: FileItems,
}

impl<'a> Parser<'a> {
    fn is_test(&self, i: usize) -> bool {
        self.mask.get(i).copied().unwrap_or(false)
    }

    /// Index just past a balanced `{…}` starting at the `{` at `open`.
    fn skip_braces(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            if self.toks[i].is_punct("{") {
                depth += 1;
            } else if self.toks[i].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Skips one `#[…]` / `#![…]` attribute starting at the `#` at `i`.
    fn skip_attr(&self, i: usize) -> usize {
        let mut j = i + 1;
        if j < self.toks.len() && self.toks[j].is_punct("!") {
            j += 1;
        }
        if j >= self.toks.len() || !self.toks[j].is_punct("[") {
            return i + 1;
        }
        let mut depth = 0i32;
        while j < self.toks.len() {
            if self.toks[j].is_punct("[") {
                depth += 1;
            } else if self.toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Parses `use …;` starting after the `use` keyword; returns the index
    /// just past the terminating `;`.
    fn parse_use(&mut self, start: usize, line: u32) -> usize {
        // Collect the whole declaration's tokens up to `;`.
        let mut end = start;
        while end < self.toks.len() && !self.toks[end].is_punct(";") {
            end += 1;
        }
        let decl = &self.toks[start..end];
        Self::expand_use(decl, &mut Vec::new(), line, &mut self.out.uses);
        end + 1
    }

    /// Recursively expands a use tree (`a::b::{c, d as e, f::*}`).
    fn expand_use(toks: &[Tok], prefix: &mut Vec<String>, line: u32, out: &mut Vec<UseItem>) {
        let mut i = 0;
        let base_len = prefix.len();
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct("::") || t.is_punct(",") {
                i += 1;
                continue;
            }
            if t.is_punct("{") {
                // Split the group body at top-level commas, recurse per arm.
                let mut depth = 0i32;
                let mut j = i;
                let mut arm_start = i + 1;
                while j < toks.len() {
                    if toks[j].is_punct("{") {
                        depth += 1;
                    } else if toks[j].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            if arm_start < j {
                                Self::expand_use(&toks[arm_start..j], prefix, line, out);
                            }
                            break;
                        }
                    } else if depth == 1 && toks[j].is_punct(",") {
                        if arm_start < j {
                            Self::expand_use(&toks[arm_start..j], prefix, line, out);
                        }
                        arm_start = j + 1;
                    }
                    j += 1;
                }
                prefix.truncate(base_len);
                return;
            }
            if t.is_punct("*") {
                // Glob import: record with the wildcard as the name so the
                // resolver can report it, not silently resolve through it.
                let mut segments = prefix.clone();
                segments.push("*".to_string());
                out.push(UseItem {
                    segments,
                    name: "*".to_string(),
                    line,
                });
                prefix.truncate(base_len);
                return;
            }
            if t.is_ident("as") {
                // Alias: previous segments stand, the binding name follows.
                if let Some(alias) = toks.get(i + 1) {
                    out.push(UseItem {
                        segments: prefix.clone(),
                        name: alias.text.clone(),
                        line,
                    });
                }
                prefix.truncate(base_len);
                return;
            }
            // An ordinary path segment.
            prefix.push(t.text.clone());
            // If this segment ends the tree (next is `,`/end), it binds.
            let next_real = toks.get(i + 1);
            let ends = match next_real {
                None => true,
                Some(n) => n.is_punct(","),
            };
            if ends {
                out.push(UseItem {
                    segments: prefix.clone(),
                    name: t.text.clone(),
                    line,
                });
                prefix.truncate(base_len);
                if next_real.is_none() {
                    return;
                }
            }
            i += 1;
        }
        prefix.truncate(base_len);
    }

    /// Extracts the implemented type's head name from the tokens between
    /// `impl` and its body `{` (handles `impl<T> Trait for Type<T>`).
    fn impl_type_head(&self, start: usize, body_open: usize) -> Option<String> {
        let toks = &self.toks[start..body_open];
        // Prefer the path after `for` (trait impls); otherwise the first
        // path. The head is the last identifier of that path at angle
        // depth 0, before generics/where.
        let mut angle = 0i32;
        let mut after_for = None;
        for (i, t) in toks.iter().enumerate() {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 && t.is_ident("for") {
                after_for = Some(i + 1);
            }
        }
        let scan_from = after_for.unwrap_or(0);
        let mut head = None;
        let mut angle = 0i32;
        for t in &toks[scan_from.min(toks.len())..] {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 {
                if t.is_ident("where") {
                    break;
                }
                if t.kind == crate::lexer::TokKind::Ident
                    && !ITEM_QUALIFIERS.contains(&t.text.as_str())
                    && t.text != "impl"
                    && t.text != "dyn"
                {
                    head = Some(t.text.clone());
                }
            }
        }
        head
    }

    /// Parses named-struct fields from the body range `(open, close)`.
    fn parse_fields(&self, open: usize, close: usize) -> Vec<FieldItem> {
        let mut fields = Vec::new();
        let mut i = open + 1;
        while i < close {
            // Skip attributes and visibility.
            if self.toks[i].is_punct("#") {
                i = self.skip_attr(i);
                continue;
            }
            if self.toks[i].is_ident("pub") {
                i += 1;
                if i < close && self.toks[i].is_punct("(") {
                    while i < close && !self.toks[i].is_punct(")") {
                        i += 1;
                    }
                    i += 1;
                }
                continue;
            }
            // `name : type-tokens ,` at depth 1.
            if self.toks[i].kind == crate::lexer::TokKind::Ident
                && self.toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
            {
                let name = self.toks[i].text.clone();
                let mut j = i + 2;
                let mut depth = 0i32;
                let mut ty = Vec::new();
                while j < close {
                    let t = &self.toks[j];
                    if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(",") {
                        break;
                    } else if t.kind == crate::lexer::TokKind::Ident {
                        ty.push(t.text.clone());
                    }
                    j += 1;
                }
                fields.push(FieldItem {
                    name,
                    ty_idents: ty,
                });
                i = j + 1;
            } else {
                i += 1;
            }
        }
        fields
    }

    /// Parses the items of one brace-delimited region (`start..stop`, both
    /// token indices into the whole stream), recursing into `mod`/`impl`/
    /// `trait` bodies and skipping `fn` bodies.
    fn parse_region(
        &mut self,
        start: usize,
        stop: usize,
        module: &mut Vec<String>,
        self_ty: Option<&str>,
    ) {
        let mut i = start;
        let mut is_pub = false;
        while i < stop.min(self.toks.len()) {
            let t = &self.toks[i];
            if t.is_punct("#") {
                i = self.skip_attr(i);
                continue;
            }
            if t.is_ident("pub") {
                is_pub = true;
                i += 1;
                // `pub(crate)` / `pub(in path)`.
                if i < stop && self.toks[i].is_punct("(") {
                    while i < stop && !self.toks[i].is_punct(")") {
                        i += 1;
                    }
                    i += 1;
                }
                continue;
            }
            if t.kind == crate::lexer::TokKind::Ident {
                match t.text.as_str() {
                    "const" | "unsafe" | "async" | "extern" | "default" => {
                        // Qualifier — unless it is a `const NAME: …` item,
                        // in which case skip to the `;` (or body for
                        // `const fn`, handled by the qualifier loop).
                        if t.is_ident("const")
                            && self
                                .toks
                                .get(i + 1)
                                .is_some_and(|n| n.kind == crate::lexer::TokKind::Ident)
                            && self.toks.get(i + 2).is_some_and(|n| n.is_punct(":"))
                        {
                            while i < stop && !self.toks[i].is_punct(";") {
                                i += 1;
                            }
                            i += 1;
                            is_pub = false;
                            continue;
                        }
                        i += 1;
                        continue;
                    }
                    "mod" => {
                        let name = self.toks.get(i + 1).map(|n| n.text.clone());
                        let mut j = i + 2;
                        if self.toks.get(j).is_some_and(|n| n.is_punct("{")) {
                            let end = self.skip_braces(j);
                            if let Some(name) = name {
                                module.push(name);
                                self.parse_region(j + 1, end - 1, module, None);
                                module.pop();
                            }
                            i = end;
                        } else {
                            // `mod name;` — out-of-line, nothing here.
                            while j < stop && !self.toks[j].is_punct(";") {
                                j += 1;
                            }
                            i = j + 1;
                        }
                        is_pub = false;
                        continue;
                    }
                    "impl" | "trait" => {
                        let kw = i;
                        // `trait Name` / `impl … { … }`: find the body `{`
                        // at angle/paren depth 0.
                        let mut j = i + 1;
                        let mut angle = 0i32;
                        while j < stop {
                            let tj = &self.toks[j];
                            if tj.is_punct("<") {
                                angle += 1;
                            } else if tj.is_punct(">") {
                                angle -= 1;
                            } else if angle <= 0 && tj.is_punct("{") {
                                break;
                            } else if tj.is_punct(";") {
                                break; // `trait X: Y;`-ish degenerate
                            }
                            j += 1;
                        }
                        if j >= stop || !self.toks[j].is_punct("{") {
                            i = j + 1;
                            is_pub = false;
                            continue;
                        }
                        let head = if t.is_ident("trait") {
                            self.toks.get(kw + 1).map(|n| n.text.clone())
                        } else {
                            self.impl_type_head(kw + 1, j)
                        };
                        let end = self.skip_braces(j);
                        self.parse_region(j + 1, end - 1, module, head.as_deref());
                        i = end;
                        is_pub = false;
                        continue;
                    }
                    "fn" => {
                        let Some(name_tok) = self.toks.get(i + 1) else {
                            i += 1;
                            continue;
                        };
                        let name = name_tok.text.clone();
                        // Scan the signature to the body `{` or decl `;`,
                        // tracking paren/bracket depth (a `{` inside a
                        // signature only occurs in const-generic braces,
                        // which we accept as the body start and tolerate).
                        let mut j = i + 2;
                        let mut depth = 0i32;
                        let mut body = None;
                        while j < self.toks.len() {
                            let tj = &self.toks[j];
                            if tj.is_punct("(") || tj.is_punct("[") {
                                depth += 1;
                            } else if tj.is_punct(")") || tj.is_punct("]") {
                                depth -= 1;
                            } else if depth == 0 && tj.is_punct("{") {
                                let end = self.skip_braces(j);
                                body = Some((j, end - 1));
                                j = end;
                                break;
                            } else if depth == 0 && tj.is_punct(";") {
                                j += 1;
                                break;
                            }
                            j += 1;
                        }
                        self.out.fns.push(FnItem {
                            name,
                            self_ty: self_ty.map(str::to_string),
                            module: module.clone(),
                            line: t.line,
                            body,
                            is_test: self.is_test(i),
                            is_pub,
                        });
                        i = j;
                        is_pub = false;
                        continue;
                    }
                    "use" => {
                        i = self.parse_use(i + 1, t.line);
                        is_pub = false;
                        continue;
                    }
                    "struct" | "enum" | "union" => {
                        let Some(name_tok) = self.toks.get(i + 1) else {
                            i += 1;
                            continue;
                        };
                        let name = name_tok.text.clone();
                        let line = t.line;
                        let is_struct = t.is_ident("struct");
                        // To the body `{`, tuple `(`, or unit `;`.
                        let mut j = i + 2;
                        let mut angle = 0i32;
                        while j < stop {
                            let tj = &self.toks[j];
                            if tj.is_punct("<") {
                                angle += 1;
                            } else if tj.is_punct(">") {
                                angle -= 1;
                            } else if angle <= 0
                                && (tj.is_punct("{") || tj.is_punct("(") || tj.is_punct(";"))
                            {
                                break;
                            }
                            j += 1;
                        }
                        let fields = if j < stop && self.toks[j].is_punct("{") && is_struct {
                            let end = self.skip_braces(j);
                            let f = self.parse_fields(j, end - 1);
                            i = end;
                            f
                        } else if j < stop && self.toks[j].is_punct("{") {
                            i = self.skip_braces(j);
                            Vec::new()
                        } else if j < stop && self.toks[j].is_punct("(") {
                            // Tuple struct: skip to `;`.
                            let mut k = j;
                            let mut d = 0i32;
                            while k < stop {
                                if self.toks[k].is_punct("(") {
                                    d += 1;
                                } else if self.toks[k].is_punct(")") {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                k += 1;
                            }
                            while k < stop && !self.toks[k].is_punct(";") {
                                k += 1;
                            }
                            i = k + 1;
                            Vec::new()
                        } else {
                            i = j + 1;
                            Vec::new()
                        };
                        self.out.types.push(TypeItem { name, fields, line });
                        is_pub = false;
                        continue;
                    }
                    "static" => {
                        let mut j = i + 1;
                        let is_mut = self.toks.get(j).is_some_and(|n| n.is_ident("mut"));
                        if is_mut {
                            j += 1;
                        }
                        let Some(name_tok) = self.toks.get(j) else {
                            i += 1;
                            continue;
                        };
                        let name = name_tok.text.clone();
                        // Type tokens between `:` and `=`/`;`.
                        let mut ty = Vec::new();
                        let mut k = j + 1;
                        while k < stop && !self.toks[k].is_punct("=") && !self.toks[k].is_punct(";")
                        {
                            if self.toks[k].kind == crate::lexer::TokKind::Ident {
                                ty.push(self.toks[k].text.clone());
                            }
                            k += 1;
                        }
                        while k < stop && !self.toks[k].is_punct(";") {
                            k += 1;
                        }
                        self.out.statics.push(StaticItem {
                            name,
                            is_mut,
                            ty_idents: ty,
                            line: t.line,
                            is_test: self.is_test(i),
                        });
                        i = k + 1;
                        is_pub = false;
                        continue;
                    }
                    "macro_rules" => {
                        // `macro_rules! name { … }`.
                        let mut j = i + 1;
                        while j < stop && !self.toks[j].is_punct("{") {
                            j += 1;
                        }
                        i = if j < stop { self.skip_braces(j) } else { stop };
                        is_pub = false;
                        continue;
                    }
                    _ => {}
                }
            }
            is_pub = false;
            i += 1;
        }
    }
}

/// Parses one file's comment-free token stream (with its aligned test
/// mask) into items. Never fails; unrecognized constructs are skipped.
#[must_use]
pub fn parse_items(toks: &[Tok], mask: &[bool]) -> FileItems {
    let mut p = Parser {
        toks,
        mask,
        out: FileItems::default(),
    };
    p.parse_region(0, toks.len(), &mut Vec::new(), None);
    p.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_regions;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> FileItems {
        let toks = tokenize(src);
        let mask_all = test_regions(&toks);
        let mut code = Vec::new();
        let mut mask = Vec::new();
        for (t, &f) in toks.iter().zip(&mask_all) {
            if !t.is_comment() {
                code.push(t.clone());
                mask.push(f);
            }
        }
        parse_items(&code, &mask)
    }

    #[test]
    fn free_fns_and_modules() {
        let items = parse(
            "pub fn alpha() -> u32 { beta() }\nfn beta() -> u32 { 1 }\nmod inner { pub fn gamma() {} }\n",
        );
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert!(items.fns[0].is_pub);
        assert!(!items.fns[1].is_pub);
        assert_eq!(items.fns[2].module, ["inner"]);
        assert!(items.fns[0].body.is_some());
    }

    #[test]
    fn impl_methods_carry_self_ty() {
        let items = parse(
            "struct Pool;\nimpl Pool { pub fn place(&mut self) {} }\nimpl<T> Iterator for Wrap<T> { fn next(&mut self) -> Option<T> { None } }\ntrait Sched { fn decide(&self) -> u32 { 0 } }\n",
        );
        let by_name: std::collections::BTreeMap<_, _> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref()))
            .collect();
        assert_eq!(by_name["place"], Some("Pool"));
        assert_eq!(by_name["next"], Some("Wrap"));
        assert_eq!(by_name["decide"], Some("Sched"));
    }

    #[test]
    fn use_trees_expand() {
        let items = parse(
            "use std::collections::{HashMap, HashSet};\nuse bshm_core::job::JobId as J;\nuse crate::pool::*;\n",
        );
        let names: Vec<_> = items.uses.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, ["HashMap", "HashSet", "J", "*"]);
        assert_eq!(items.uses[0].segments, ["std", "collections", "HashMap"]);
        assert_eq!(items.uses[2].segments, ["bshm_core", "job", "JobId"]);
    }

    #[test]
    fn struct_fields_and_statics() {
        let items = parse(
            "pub struct Pool { jobs: HashMap<JobId, u64>, names: Vec<String> }\nstruct Unit;\nstruct Tup(u32, u32);\nstatic mut COUNTER: u64 = 0;\nstatic TABLE: Mutex<BTreeMap<u32, u32>> = Mutex::new(BTreeMap::new());\n",
        );
        assert_eq!(items.types.len(), 3);
        assert_eq!(items.types[0].fields.len(), 2);
        assert_eq!(items.types[0].fields[0].name, "jobs");
        assert!(items.types[0].fields[0]
            .ty_idents
            .contains(&"HashMap".to_string()));
        assert_eq!(items.statics.len(), 2);
        assert!(items.statics[0].is_mut);
        assert!(!items.statics[1].is_mut);
        assert!(items.statics[1].ty_idents.contains(&"Mutex".to_string()));
    }

    #[test]
    fn test_fns_are_marked() {
        let items = parse("fn live() {}\n#[cfg(test)]\nmod tests { #[test]\nfn case() {} }\n");
        let live = items.fns.iter().find(|f| f.name == "live").unwrap();
        let case = items.fns.iter().find(|f| f.name == "case").unwrap();
        assert!(!live.is_test);
        assert!(case.is_test);
        assert_eq!(case.module, ["tests"]);
    }

    #[test]
    fn fn_bodies_are_ranges_into_the_stream() {
        let src = "fn a() { inner_call(); }\nfn b() {}\n";
        let toks = tokenize(src);
        let mask = vec![false; toks.len()];
        let items = parse_items(&toks, &mask);
        let (s, e) = items.fns[0].body.unwrap();
        let body_texts: Vec<_> = toks[s..=e].iter().map(|t| t.text.as_str()).collect();
        assert!(body_texts.contains(&"inner_call"));
        assert!(!body_texts.contains(&"b"));
    }

    #[test]
    fn const_items_do_not_swallow_fns() {
        let items = parse("const N: usize = 3;\npub const fn k() -> u32 { 1 }\nfn after() {}\n");
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["k", "after"]);
    }
}
