//! `bshm-analyze` — in-tree static analysis for the bshm workspace.
//!
//! The correctness story of this reproduction rests on invariants the
//! compiler cannot see: exact cost accounting over integer time,
//! deterministic replayable traces, and a hand-synchronized TraceEvent
//! schema shared by the emitter, the replay checker and the Prometheus
//! encoder. Because the build is offline (registry deps are in-tree
//! shims), clippy plugins/dylint are unavailable — so the analyzer is an
//! ordinary workspace crate: a comment/string/raw-string-aware tokenizer
//! ([`lexer`]), a rule engine with severities and per-line
//! `// bshm-allow(rule): reason` pragmas ([`diag`], [`rules`]), and
//! cross-artifact drift auditors ([`drift`]).
//!
//! Run it as `cargo run -p bshm-analyze` (add `-- --format json` for the
//! CI artifact). Exit status is non-zero iff any error-severity
//! diagnostic survives pragma filtering.

pub mod context;
pub mod diag;
pub mod drift;
pub mod lexer;
pub mod rules;
pub mod walk;

use context::FileContext;
use diag::{Diagnostic, Report};
use std::path::Path;

/// Lints one file's source text (pragmas applied). Exposed so fixture
/// tests and external tools can run single-file checks.
#[must_use]
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::classify(rel_path);
    let toks = lexer::tokenize(src);
    let in_test = context::test_regions(&toks);
    let (pragmas, mut diags) = diag::collect_pragmas(&toks, &ctx.path);
    // Rules see comment-free streams; keep the test mask aligned.
    let mut code = Vec::with_capacity(toks.len());
    let mut mask = Vec::with_capacity(toks.len());
    for (t, &flag) in toks.iter().zip(&in_test) {
        if !t.is_comment() {
            code.push(t.clone());
            mask.push(flag);
        }
    }
    let findings = rules::check_file(&ctx, &code, &mask);
    diags.extend(diag::apply_pragmas(findings, &pragmas, &ctx.path));
    diags
}

/// Runs the drift auditors against in-memory copies of the synchronized
/// artifacts. Tests feed mutated copies through this to prove the gate
/// trips; [`analyze_workspace`] feeds the real files.
#[must_use]
pub struct DriftInputs {
    /// `crates/obs/src/event.rs`.
    pub event_rs: String,
    /// `crates/obs/src/replay.rs`.
    pub replay_rs: String,
    /// `crates/obs/src/recorder.rs`.
    pub recorder_rs: String,
    /// `crates/obs/src/prometheus.rs`.
    pub prometheus_rs: String,
    /// `crates/cli/src/commands.rs`.
    pub commands_rs: String,
    /// `crates/cli/src/args.rs`.
    pub args_rs: String,
    /// `README.md`.
    pub readme: String,
    /// `crates/bench/src/baseline.rs`.
    pub baseline_rs: String,
    /// `EXPERIMENTS.md`.
    pub experiments_md: String,
    /// Committed `BENCH_*.json` files as `(name, contents)`.
    pub bench_jsons: Vec<(String, String)>,
}

impl DriftInputs {
    /// Loads the real artifacts from a workspace root.
    ///
    /// # Errors
    /// Names the first file that could not be read.
    pub fn load(root: &Path) -> Result<DriftInputs, String> {
        let read = |rel: &str| {
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))
        };
        Ok(DriftInputs {
            event_rs: read("crates/obs/src/event.rs")?,
            replay_rs: read("crates/obs/src/replay.rs")?,
            recorder_rs: read("crates/obs/src/recorder.rs")?,
            prometheus_rs: read("crates/obs/src/prometheus.rs")?,
            commands_rs: read("crates/cli/src/commands.rs")?,
            args_rs: read("crates/cli/src/args.rs")?,
            readme: read("README.md")?,
            baseline_rs: read("crates/bench/src/baseline.rs")?,
            experiments_md: read("EXPERIMENTS.md")?,
            bench_jsons: walk::bench_baselines(root),
        })
    }

    /// Runs every drift auditor over these inputs.
    #[must_use]
    pub fn audit(&self) -> Vec<Diagnostic> {
        let mut out = drift::audit_trace_schema(
            &self.event_rs,
            &self.replay_rs,
            &self.recorder_rs,
            &self.prometheus_rs,
        );
        out.extend(drift::audit_cli(
            &self.commands_rs,
            &self.args_rs,
            &self.readme,
        ));
        out.extend(drift::audit_bench_schema(
            &self.baseline_rs,
            &self.experiments_md,
            &self.bench_jsons,
        ));
        out
    }
}

/// Analyzes a whole workspace: lints every first-party `.rs` file and runs
/// the drift auditors against the real artifacts.
///
/// # Errors
/// Propagates unreadable drift artifacts (a missing synchronized file is
/// itself a drift failure worth a hard error).
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let files = walk::rust_files(root);
    let mut diags = Vec::new();
    for path in &files {
        let rel = walk::rel(root, path);
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        diags.extend(analyze_source(&rel, &src));
    }
    diags.extend(DriftInputs::load(root)?.audit());
    Ok(Report::new(diags, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_source_applies_pragmas() {
        let src = "fn f() {\n  x.unwrap(); // bshm-allow(no-panic): fixture\n  y.unwrap();\n}\n";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn analyze_source_reports_malformed_pragma() {
        let src = "fn f() { x.unwrap(); } // bshm-allow(no-panic)\n";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "pragma-syntax"), "{d:?}");
        // The unwrap still fires: a broken pragma suppresses nothing.
        assert!(d.iter().any(|d| d.rule == "no-panic"), "{d:?}");
    }
}
