//! `bshm-analyze` — in-tree static analysis for the bshm workspace.
//!
//! The correctness story of this reproduction rests on invariants the
//! compiler cannot see: exact cost accounting over integer time,
//! deterministic replayable traces, and a hand-synchronized TraceEvent
//! schema shared by the emitter, the replay checker and the Prometheus
//! encoder. Because the build is offline (registry deps are in-tree
//! shims), clippy plugins/dylint are unavailable — so the analyzer is an
//! ordinary workspace crate: a comment/string/raw-string-aware tokenizer
//! ([`lexer`]), a rule engine with severities and per-line
//! `// bshm-allow(rule): reason` pragmas ([`diag`], [`rules`]), and
//! cross-artifact drift auditors ([`drift`]).
//!
//! Since PR 9 the per-file rules sit under a three-layer whole-workspace
//! stack: an item parser ([`items`]) builds a symbol table on the lexer,
//! a call graph ([`graph`]) resolves intra-workspace calls best-effort
//! (with the unresolved remainder itself reported), and a taint engine
//! ([`taint`]) propagates nondeterminism from sources to trace/bench/
//! checkpoint/alert sinks along that graph, plus a concurrency-readiness
//! audit over the solver entry points.
//!
//! Run it as `cargo run -p bshm-analyze` (add `-- --format json` for the
//! CI artifact, `--graph`/`--taint` for the layer reports). Exit status
//! is non-zero iff any error-severity diagnostic survives pragma
//! filtering.

pub mod context;
pub mod diag;
pub mod drift;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod taint;
pub mod walk;

use context::FileContext;
use diag::{Diagnostic, Report};
use std::collections::BTreeMap;
use std::path::Path;

/// Lints one file's source text (pragmas applied). Exposed so fixture
/// tests and external tools can run single-file checks.
#[must_use]
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::classify(rel_path);
    let toks = lexer::tokenize(src);
    let in_test = context::test_regions(&toks);
    let (pragmas, mut diags) = diag::collect_pragmas(&toks, &ctx.path);
    // Rules see comment-free streams; keep the test mask aligned.
    let mut code = Vec::with_capacity(toks.len());
    let mut mask = Vec::with_capacity(toks.len());
    for (t, &flag) in toks.iter().zip(&in_test) {
        if !t.is_comment() {
            code.push(t.clone());
            mask.push(flag);
        }
    }
    let findings = rules::check_file(&ctx, &code, &mask);
    diags.extend(diag::apply_pragmas(findings, &pragmas, &ctx.path));
    diags
}

/// The full three-layer result: merged diagnostics plus the graph and
/// taint reports that `--graph`/`--taint` serialize for CI.
pub struct WorkspaceAnalysis {
    /// Per-file rules + taint/audit findings + drift audits, post-pragma.
    pub report: Report,
    /// Call-graph statistics, including the unresolved bucket.
    pub graph: graph::GraphReport,
    /// Taint propagation + concurrency-audit summary.
    pub taint: taint::TaintReport,
}

/// The pure whole-workspace core: lints, call graph, and taint over a set
/// of `(rel_path, source)` files. No filesystem access — fixture tests
/// feed synthetic workspaces through this; [`analyze_workspace_full`]
/// feeds the real one (and appends the drift audits, which need non-Rust
/// artifacts).
///
/// Pragmas are applied exactly once per file, over the *merged* per-file
/// and graph-level findings — so a `bshm-allow(taint-path)` line pragma
/// suppresses the cross-file finding anchored there, and a pragma used
/// only by a taint finding does not misfire as `pragma-unused`.
#[must_use]
pub fn analyze_files(sources: &[(String, String)]) -> WorkspaceAnalysis {
    let mut parsed: Vec<graph::ParsedFile> = Vec::with_capacity(sources.len());
    let mut pragmas_per = Vec::with_capacity(sources.len());
    let mut findings_per: Vec<Vec<Diagnostic>> = Vec::with_capacity(sources.len());
    let mut diags = Vec::new();
    for (rel, src) in sources {
        let ctx = FileContext::classify(rel);
        let toks = lexer::tokenize(src);
        let in_test = context::test_regions(&toks);
        let (pragmas, pragma_diags) = diag::collect_pragmas(&toks, &ctx.path);
        diags.extend(pragma_diags);
        let pf = graph::ParsedFile::build(rel, &toks, &in_test);
        findings_per.push(rules::check_file(&pf.ctx, &pf.code, &pf.mask));
        pragmas_per.push(pragmas);
        parsed.push(pf);
    }
    let g = graph::build(&parsed);
    let (taint_findings, mut taint_report) = taint::analyze(&parsed, &g);
    let index: BTreeMap<&str, usize> = parsed
        .iter()
        .enumerate()
        .map(|(i, pf)| (pf.rel.as_str(), i))
        .collect();
    for f in taint_findings {
        match index.get(f.file.as_str()) {
            Some(&i) => findings_per[i].push(f),
            None => diags.push(f),
        }
    }
    for (i, findings) in findings_per.into_iter().enumerate() {
        let (kept, suppressed) =
            diag::apply_pragmas_tracked(findings, &pragmas_per[i], &parsed[i].rel);
        diags.extend(kept);
        for (d, reason) in suppressed {
            if matches!(d.rule.as_str(), "taint-path" | "concurrency-audit") {
                taint_report.suppressed.push(taint::SuppressedPath {
                    rule: d.rule,
                    file: d.file,
                    line: d.line,
                    reason,
                });
            }
        }
    }
    WorkspaceAnalysis {
        report: Report::new(diags, sources.len()),
        graph: g.report,
        taint: taint_report,
    }
}

/// Runs the drift auditors against in-memory copies of the synchronized
/// artifacts. Tests feed mutated copies through this to prove the gate
/// trips; [`analyze_workspace`] feeds the real files.
#[must_use]
pub struct DriftInputs {
    /// `crates/obs/src/event.rs`.
    pub event_rs: String,
    /// `crates/obs/src/replay.rs`.
    pub replay_rs: String,
    /// `crates/obs/src/recorder.rs`.
    pub recorder_rs: String,
    /// `crates/obs/src/prometheus.rs`.
    pub prometheus_rs: String,
    /// `crates/cli/src/commands.rs`.
    pub commands_rs: String,
    /// `crates/cli/src/args.rs`.
    pub args_rs: String,
    /// `README.md`.
    pub readme: String,
    /// `crates/bench/src/baseline.rs`.
    pub baseline_rs: String,
    /// `EXPERIMENTS.md`.
    pub experiments_md: String,
    /// Committed `BENCH_*.json` files as `(name, contents)`.
    pub bench_jsons: Vec<(String, String)>,
    /// `ANALYZE_RULES.json` — the committed rule manifest.
    pub rules_manifest: String,
    /// `crates/bench/src/bin/reproduce.rs` — the EXPERIMENTS.md generator.
    pub reproduce_rs: String,
}

impl DriftInputs {
    /// Loads the real artifacts from a workspace root.
    ///
    /// # Errors
    /// Names the first file that could not be read.
    pub fn load(root: &Path) -> Result<DriftInputs, String> {
        let read = |rel: &str| {
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))
        };
        Ok(DriftInputs {
            event_rs: read("crates/obs/src/event.rs")?,
            replay_rs: read("crates/obs/src/replay.rs")?,
            recorder_rs: read("crates/obs/src/recorder.rs")?,
            prometheus_rs: read("crates/obs/src/prometheus.rs")?,
            commands_rs: read("crates/cli/src/commands.rs")?,
            args_rs: read("crates/cli/src/args.rs")?,
            readme: read("README.md")?,
            baseline_rs: read("crates/bench/src/baseline.rs")?,
            experiments_md: read("EXPERIMENTS.md")?,
            bench_jsons: walk::bench_baselines(root),
            rules_manifest: read("ANALYZE_RULES.json")?,
            reproduce_rs: read("crates/bench/src/bin/reproduce.rs")?,
        })
    }

    /// Runs every drift auditor over these inputs.
    #[must_use]
    pub fn audit(&self) -> Vec<Diagnostic> {
        let mut out = drift::audit_trace_schema(
            &self.event_rs,
            &self.replay_rs,
            &self.recorder_rs,
            &self.prometheus_rs,
        );
        out.extend(drift::audit_cli(
            &self.commands_rs,
            &self.args_rs,
            &self.readme,
        ));
        out.extend(drift::audit_bench_schema(
            &self.baseline_rs,
            &self.experiments_md,
            &self.bench_jsons,
        ));
        out.extend(drift::audit_rules_manifest(
            &self.rules_manifest,
            &self.experiments_md,
            &self.reproduce_rs,
        ));
        out
    }
}

/// Analyzes a whole workspace: lints every first-party `.rs` file, builds
/// the call graph, runs taint + the concurrency audit, and runs the drift
/// auditors against the real artifacts.
///
/// # Errors
/// Propagates unreadable source files and drift artifacts (a missing
/// synchronized file is itself a drift failure worth a hard error).
pub fn analyze_workspace_full(root: &Path) -> Result<WorkspaceAnalysis, String> {
    let paths = walk::rust_files(root);
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = walk::rel(root, path);
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        sources.push((rel, src));
    }
    let mut wa = analyze_files(&sources);
    let mut diags = std::mem::take(&mut wa.report.diagnostics);
    diags.extend(DriftInputs::load(root)?.audit());
    wa.report = Report::new(diags, paths.len());
    Ok(wa)
}

/// Back-compat wrapper around [`analyze_workspace_full`] returning only
/// the diagnostic report.
///
/// # Errors
/// See [`analyze_workspace_full`].
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    Ok(analyze_workspace_full(root)?.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_source_applies_pragmas() {
        let src = "fn f() {\n  x.unwrap(); // bshm-allow(no-panic): fixture\n  y.unwrap();\n}\n";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn analyze_source_reports_malformed_pragma() {
        let src = "fn f() { x.unwrap(); } // bshm-allow(no-panic)\n";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "pragma-syntax"), "{d:?}");
        // The unwrap still fires: a broken pragma suppresses nothing.
        assert!(d.iter().any(|d| d.rule == "no-panic"), "{d:?}");
    }

    #[test]
    fn analyze_files_merges_taint_findings_with_per_file_rules() {
        // The wall-clock read fires both the per-file rule and (via the
        // callee edge into the TraceEvent emitter) a taint-path finding.
        let sources = vec![
            (
                "crates/sim/src/stamp.rs".to_string(),
                "pub fn stamp() -> u64 { let t = Instant::now(); emit(t); 0 }\n".to_string(),
            ),
            (
                "crates/sim/src/emit.rs".to_string(),
                "pub fn emit(t: u64) { record(TraceEvent::Tick { t }); }\n".to_string(),
            ),
        ];
        let wa = analyze_files(&sources);
        let rules: Vec<&str> = wa
            .report
            .diagnostics
            .iter()
            .map(|d| d.rule.as_str())
            .collect();
        assert!(rules.contains(&"wall-clock"), "{rules:?}");
        assert!(rules.contains(&"taint-path"), "{rules:?}");
        assert!(wa.graph.fns >= 2);
        assert_eq!(wa.taint.sources, 1);
    }

    #[test]
    fn taint_pragma_suppresses_and_is_listed_not_unused() {
        // Pragmas apply once over the merged findings: one line pragma per
        // rule silences the cross-file taint finding without tripping
        // `pragma-unused`, and the suppression lands in the taint report.
        let sources = vec![
            (
                "crates/sim/src/stamp.rs".to_string(),
                "pub fn stamp() -> u64 {\n  // bshm-allow(wall-clock): fixture — sanctioned read\n  // bshm-allow(taint-path): fixture — value never keys a fold\n  let t = Instant::now(); emit(t); 0\n}\n".to_string(),
            ),
            (
                "crates/sim/src/emit.rs".to_string(),
                "pub fn emit(t: u64) { record(TraceEvent::Tick { t }); }\n".to_string(),
            ),
        ];
        let wa = analyze_files(&sources);
        assert_eq!(wa.report.errors, 0, "{:?}", wa.report.diagnostics);
        assert_eq!(wa.report.warnings, 0, "{:?}", wa.report.diagnostics);
        assert_eq!(wa.taint.suppressed.len(), 1, "{:?}", wa.taint.suppressed);
        assert_eq!(wa.taint.suppressed[0].rule, "taint-path");
        assert!(wa.taint.suppressed[0].reason.contains("never keys a fold"));
    }
}
