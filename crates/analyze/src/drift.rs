//! Cross-artifact drift auditors.
//!
//! The TraceEvent schema, the CLI surface, and the BENCH report schema
//! each live in several hand-synchronized places. These auditors parse the
//! actual artifacts (source files, markdown, committed JSON) and fail when
//! any copy falls out of step. They take file *contents*, not paths, so
//! tests can feed mutated copies and prove the gate trips.

use crate::diag::Diagnostic;
use crate::lexer::{tokenize, Tok, TokKind};

/// Variant names of a `pub enum <name>` declared in `src`.
#[must_use]
pub fn enum_variants(src: &str, enum_name: &str) -> Vec<String> {
    let toks: Vec<Tok> = tokenize(src)
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(enum_name)) {
            // Skip generics to the opening brace.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            let mut depth = 0i32;
            let mut expect_variant = true;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("{") || t.is_punct("(") {
                    depth += 1;
                    if depth > 1 {
                        expect_variant = false;
                    }
                } else if t.is_punct("}") || t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 && t.is_punct("}") {
                        return out;
                    }
                } else if depth == 1 {
                    if t.is_punct(",") {
                        expect_variant = true;
                    } else if t.is_punct("#") {
                        // Variant attribute: skip its [ … ] group.
                        let mut d = 0i32;
                        j += 1;
                        while j < toks.len() {
                            if toks[j].is_punct("[") {
                                d += 1;
                            } else if toks[j].is_punct("]") {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if expect_variant && t.kind == TokKind::Ident {
                        out.push(t.text.clone());
                        expect_variant = false;
                    }
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Field names of `pub struct <name> { pub field: … }` declared in `src`.
#[must_use]
pub fn struct_fields(src: &str, struct_name: &str) -> Vec<String> {
    let toks: Vec<Tok> = tokenize(src)
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.is_ident(struct_name)) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("{") || t.is_punct("(") || t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") || t.is_punct(">") {
                    depth -= 1;
                    if depth == 0 && t.is_punct("}") {
                        return out;
                    }
                } else if depth == 1
                    && t.is_ident("pub")
                    && toks.get(j + 1).map(|n| n.kind.clone()) == Some(TokKind::Ident)
                    && toks.get(j + 2).is_some_and(|n| n.is_punct(":"))
                {
                    out.push(toks[j + 1].text.clone());
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Whether the token sequence `Path :: name` occurs anywhere in `src`
/// (comments excluded, so a commented-out match arm does not count).
#[must_use]
pub fn mentions_path(src: &str, head: &str, name: &str) -> bool {
    let toks: Vec<Tok> = tokenize(src)
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
    toks.windows(3)
        .any(|w| w[0].is_ident(head) && w[1].is_punct("::") && w[2].is_ident(name))
}

/// Whether `ident` occurs as a code identifier in `src`.
#[must_use]
pub fn mentions_ident(src: &str, ident: &str) -> bool {
    tokenize(src)
        .iter()
        .any(|t| !t.is_comment() && t.is_ident(ident))
}

/// Audits the TraceEvent pipeline: every variant declared in `event.rs`
/// must be consumed by the replay checker (`replay.rs`) and folded into
/// metrics by the recorder (`recorder.rs`), whose fields in turn must all
/// be encoded by the Prometheus encoder (`prometheus.rs`). Together these
/// guarantee a new event kind cannot silently skip replay or exposition.
#[must_use]
pub fn audit_trace_schema(
    event_rs: &str,
    replay_rs: &str,
    recorder_rs: &str,
    prometheus_rs: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let variants = enum_variants(event_rs, "TraceEvent");
    if variants.is_empty() {
        out.push(Diagnostic::error(
            "drift/trace-schema",
            "crates/obs/src/event.rs",
            0,
            "could not find any TraceEvent variants (parser drift?)",
        ));
        return out;
    }
    for v in &variants {
        for (file, src, role) in [
            ("crates/obs/src/replay.rs", replay_rs, "replay checker"),
            (
                "crates/obs/src/recorder.rs",
                recorder_rs,
                "metrics recorder",
            ),
        ] {
            if !mentions_path(src, "TraceEvent", v) {
                out.push(Diagnostic::error(
                    "drift/trace-schema",
                    file,
                    0,
                    format!(
                        "TraceEvent::{v} is declared in event.rs but never matched by the {role}"
                    ),
                ));
            }
        }
        // `kind()` must name the variant as a string for trace tooling.
        if !event_rs.contains(&format!("\"{v}\"")) {
            out.push(Diagnostic::error(
                "drift/trace-schema",
                "crates/obs/src/event.rs",
                0,
                format!("TraceEvent::{v} has no string name in kind()"),
            ));
        }
    }
    for f in struct_fields(recorder_rs, "Metrics") {
        if !mentions_ident(prometheus_rs, &f) {
            out.push(Diagnostic::error(
                "drift/prometheus",
                "crates/obs/src/prometheus.rs",
                0,
                format!("Metrics::{f} is recorded but never encoded in the Prometheus exposition"),
            ));
        }
    }
    out
}

/// Subcommand names dispatched by `commands.rs` (string-literal match arms
/// of the `dispatch` function, aliases like `--help`/`-h` excluded).
#[must_use]
pub fn cli_subcommands(commands_rs: &str) -> Vec<String> {
    let toks: Vec<Tok> = tokenize(commands_rs)
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
    // Find `match cmd . as_str ( ) {` and walk its arms.
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("match") && toks.get(i + 1).is_some_and(|t| t.is_ident("cmd"))) {
            continue;
        }
        let mut j = i;
        while j < toks.len() && !toks[j].is_punct("{") {
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 && t.kind == TokKind::Str {
                // Arm pattern literal: `"gen" =>` or `"help" | "--help"`.
                let is_pattern = toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct("=>") || n.is_punct("|"))
                    || j > 0 && toks[j - 1].is_punct("|");
                let name = t.text.trim_matches('"').to_string();
                if is_pattern && !name.starts_with('-') && !out.contains(&name) {
                    out.push(name);
                }
            }
            j += 1;
        }
        break;
    }
    out
}

/// Subcommands documented in a usage/README text: occurrences of
/// `bshm <word>` (word of lowercase letters and dashes).
#[must_use]
pub fn documented_subcommands(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in text.split("bshm").skip(1) {
        let rest = chunk.trim_start_matches([' ', '\t']);
        if rest.len() == chunk.len() {
            continue; // not followed by whitespace: `bshm-core` etc.
        }
        let word: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || *c == '-')
            .collect();
        if !word.is_empty() && !word.starts_with('-') && !out.contains(&word) {
            out.push(word);
        }
    }
    out
}

/// The string literal assigned to `const USAGE` in `commands.rs`.
#[must_use]
pub fn usage_literal(commands_rs: &str) -> String {
    let toks = tokenize(commands_rs);
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("USAGE") {
            if let Some(s) = toks[i..].iter().find(|t| t.kind == TokKind::Str) {
                // Undo the `\` line continuations of the raw source text.
                return s.text.replace("\\\n", "\n").replace("\\n", "\n");
            }
        }
    }
    String::new()
}

/// Audits the CLI surface: every dispatched subcommand must appear in the
/// USAGE string and in the README, and vice versa (no documented command
/// that the dispatcher rejects). `args.rs`'s boolean switches must be
/// spelled in USAGE too, so `--metrics`-style flags stay documented.
#[must_use]
pub fn audit_cli(commands_rs: &str, args_rs: &str, readme: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let dispatched = cli_subcommands(commands_rs);
    if dispatched.is_empty() {
        out.push(Diagnostic::error(
            "drift/cli",
            "crates/cli/src/commands.rs",
            0,
            "could not find the dispatch match (parser drift?)",
        ));
        return out;
    }
    let usage = usage_literal(commands_rs);
    let in_usage = documented_subcommands(&usage);
    let in_readme = documented_subcommands(readme);
    for c in &dispatched {
        if c == "help" {
            continue; // `bshm help` is the usage screen itself
        }
        if !in_usage.contains(c) {
            out.push(Diagnostic::error(
                "drift/cli",
                "crates/cli/src/commands.rs",
                0,
                format!("subcommand `{c}` is dispatched but missing from the USAGE string"),
            ));
        }
        if !in_readme.contains(c) {
            out.push(Diagnostic::error(
                "drift/cli",
                "README.md",
                0,
                format!("subcommand `{c}` is dispatched but never shown in README"),
            ));
        }
    }
    for c in in_usage.iter().chain(&in_readme) {
        if !dispatched.contains(c) && c != "help" {
            out.push(Diagnostic::error(
                "drift/cli",
                "crates/cli/src/commands.rs",
                0,
                format!("documented subcommand `{c}` is not handled by dispatch"),
            ));
        }
    }
    // Boolean switches declared in args.rs must be documented in USAGE.
    let toks = tokenize(args_rs);
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("BOOLEAN_FLAGS") {
            for s in toks[i..].iter().take_while(|t| !t.is_punct(";")) {
                if s.kind == TokKind::Str {
                    let flag = format!("--{}", s.text.trim_matches('"'));
                    if !usage.contains(&flag) {
                        out.push(Diagnostic::error(
                            "drift/cli",
                            "crates/cli/src/args.rs",
                            s.line,
                            format!("boolean switch `{flag}` is not documented in USAGE"),
                        ));
                    }
                }
            }
            break;
        }
    }
    out
}

/// Slugs of every drift auditor, used by `--list-rules`, pragma-name
/// validation, and the committed `ANALYZE_RULES.json` manifest.
pub const DRIFT_AUDITORS: [&str; 5] = [
    "drift/trace-schema",
    "drift/prometheus",
    "drift/cli",
    "drift/bench-schema",
    "drift/rules-manifest",
];

/// Extracts the string array stored under `"key"` in a JSON document.
/// Same shallow string-extraction style as the other auditors — enough
/// for the flat manifest format, with no dependence on a deserializer.
#[must_use]
pub fn json_string_array(json: &str, key: &str) -> Option<Vec<String>> {
    let rest = json.split(&format!("\"{key}\"")).nth(1)?;
    let start = rest.find('[')?;
    let end = start + rest[start..].find(']')?;
    Some(
        rest[start + 1..end]
            .split(',')
            .map(|s| s.trim().trim_matches('"'))
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
    )
}

/// Audits the rule registry against its committed manifest and docs:
/// `ANALYZE_RULES.json` must list exactly the registered rules and drift
/// auditors (name/count/order drift trips the build, same pattern as the
/// schema auditors), and every rule name must appear in the EXPERIMENTS.md
/// taxonomy table *and* in the `reproduce` generator's static text, so
/// regenerating the docs can never silently drop the taxonomy.
#[must_use]
pub fn audit_rules_manifest(
    manifest_json: &str,
    experiments_md: &str,
    reproduce_rs: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let expected_rules: Vec<&str> = crate::rules::RULES.iter().map(|r| r.name).collect();
    let sections: [(&str, &[&str]); 2] = [
        ("rules", &expected_rules),
        ("drift_auditors", &DRIFT_AUDITORS),
    ];
    for (key, expected) in sections {
        let Some(listed) = json_string_array(manifest_json, key) else {
            out.push(Diagnostic::error(
                "drift/rules-manifest",
                "ANALYZE_RULES.json",
                0,
                format!("manifest has no `{key}` array; regenerate it from `--list-rules`"),
            ));
            continue;
        };
        for e in expected {
            if !listed.iter().any(|l| l == e) {
                out.push(Diagnostic::error(
                    "drift/rules-manifest",
                    "ANALYZE_RULES.json",
                    0,
                    format!("`{e}` is registered but missing from the manifest's `{key}` array"),
                ));
            }
        }
        for l in &listed {
            if !expected.contains(&l.as_str()) {
                out.push(Diagnostic::error(
                    "drift/rules-manifest",
                    "ANALYZE_RULES.json",
                    0,
                    format!("manifest `{key}` lists `{l}`, which is not registered"),
                ));
            }
        }
        if out.is_empty() && listed != *expected {
            out.push(Diagnostic::error(
                "drift/rules-manifest",
                "ANALYZE_RULES.json",
                0,
                format!("manifest `{key}` order differs from the registry"),
            ));
        }
    }
    for name in &expected_rules {
        let span = format!("`{name}`");
        if !experiments_md.contains(&span) {
            out.push(Diagnostic::error(
                "drift/rules-manifest",
                "EXPERIMENTS.md",
                0,
                format!("rule {span} is missing from the EXPERIMENTS.md rule-taxonomy table"),
            ));
        }
        if !reproduce_rs.contains(&span) {
            out.push(Diagnostic::error(
                "drift/rules-manifest",
                "crates/bench/src/bin/reproduce.rs",
                0,
                format!(
                    "rule {span} is missing from the reproduce generator's taxonomy section; regenerated docs would drop it"
                ),
            ));
        }
    }
    out
}

/// Extracts `pub const SCHEMA_VERSION: u64 = N` from `baseline.rs`.
#[must_use]
pub fn bench_schema_version(baseline_rs: &str) -> Option<u64> {
    let toks: Vec<Tok> = tokenize(baseline_rs)
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SCHEMA_VERSION") {
            return toks[i..]
                .iter()
                .take_while(|t| !t.is_punct(";"))
                .find(|t| t.kind == TokKind::Int)
                .and_then(|t| t.text.parse().ok());
        }
    }
    None
}

/// Audits the BENCH report schema: the `SCHEMA_VERSION` constant in
/// `bench/src/baseline.rs` must match the version EXPERIMENTS.md documents
/// (as `schema_version = N`) and the `"schema_version"` field of every
/// committed `BENCH_*.json` baseline.
#[must_use]
pub fn audit_bench_schema(
    baseline_rs: &str,
    experiments_md: &str,
    bench_jsons: &[(String, String)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(version) = bench_schema_version(baseline_rs) else {
        out.push(Diagnostic::error(
            "drift/bench-schema",
            "crates/bench/src/baseline.rs",
            0,
            "could not find SCHEMA_VERSION constant (parser drift?)",
        ));
        return out;
    };
    let documented = experiments_md
        .split("schema_version = ")
        .nth(1)
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|s| s.parse::<u64>().ok());
    match documented {
        Some(d) if d == version => {}
        Some(d) => out.push(Diagnostic::error(
            "drift/bench-schema",
            "EXPERIMENTS.md",
            0,
            format!("EXPERIMENTS.md documents schema_version = {d} but baseline.rs says {version}"),
        )),
        None => out.push(Diagnostic::error(
            "drift/bench-schema",
            "EXPERIMENTS.md",
            0,
            format!("EXPERIMENTS.md does not state `schema_version = {version}` (add it so readers know which schema the docs describe)"),
        )),
    }
    for (name, json) in bench_jsons {
        let found = json
            .split("\"schema_version\"")
            .nth(1)
            .and_then(|rest| rest.split(':').nth(1))
            .map(str::trim_start)
            .map(|s| {
                s.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
            })
            .and_then(|s| s.parse::<u64>().ok());
        if found != Some(version) {
            out.push(Diagnostic::error(
                "drift/bench-schema",
                name,
                0,
                format!(
                    "committed baseline declares schema_version {found:?}, baseline.rs says {version}"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVENT: &str = r#"
        pub enum TraceEvent {
            Arrival { t: u64, size: u64 },
            #[serde(rename = "open")]
            MachineOpen { t: u64 },
            Departure { t: u64 },
        }
        impl TraceEvent {
            pub fn kind(&self) -> &'static str {
                match self {
                    TraceEvent::Arrival { .. } => "Arrival",
                    TraceEvent::MachineOpen { .. } => "MachineOpen",
                    TraceEvent::Departure { .. } => "Departure",
                }
            }
        }
    "#;

    #[test]
    fn enum_variant_extraction() {
        assert_eq!(
            enum_variants(EVENT, "TraceEvent"),
            ["Arrival", "MachineOpen", "Departure"]
        );
        assert!(enum_variants(EVENT, "Nope").is_empty());
    }

    #[test]
    fn struct_field_extraction() {
        let src =
            "pub struct Metrics { pub arrivals: u64, hidden: u64, pub cost_by_type: Vec<u64>, }";
        assert_eq!(struct_fields(src, "Metrics"), ["arrivals", "cost_by_type"]);
    }

    #[test]
    fn trace_schema_clean_when_all_mentioned() {
        let consumer = "fn f(e: &TraceEvent) { match e { TraceEvent::Arrival{..} => 1, TraceEvent::MachineOpen{..} => 2, TraceEvent::Departure{..} => 3 }; }";
        let prom = "fn encode(metrics: &Metrics) { metrics.arrivals; }";
        let recorder = format!("{consumer} pub struct Metrics {{ pub arrivals: u64 }}");
        let d = audit_trace_schema(EVENT, consumer, &recorder, prom);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn trace_schema_catches_missing_variant() {
        // Replay handles only two of the three variants.
        let partial = "fn f(e: &TraceEvent) { match e { TraceEvent::Arrival{..} => 1, TraceEvent::Departure{..} => 3, _ => 0 }; }";
        let full = "fn f(e: &TraceEvent) { TraceEvent::Arrival; TraceEvent::MachineOpen; TraceEvent::Departure; } pub struct Metrics {}";
        let d = audit_trace_schema(EVENT, partial, full, "");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("MachineOpen"));
        assert!(d[0].file.contains("replay"));
    }

    #[test]
    fn trace_schema_catches_unencoded_metric_field() {
        let consumer = "fn f(e: &TraceEvent) { TraceEvent::Arrival; TraceEvent::MachineOpen; TraceEvent::Departure; }";
        let recorder =
            format!("{consumer} pub struct Metrics {{ pub arrivals: u64, pub new_field: u64 }}");
        let prom = "fn encode(m: &Metrics) { m.arrivals; }";
        let d = audit_trace_schema(EVENT, consumer, &recorder, prom);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("new_field"));
    }

    const COMMANDS: &str = r#"
        const USAGE: &str = "USAGE: bshm gen --n N\n  bshm solve --alg X\n";
        pub fn dispatch(cmd: &str) {
            match cmd.as_str() {
                "gen" => 1,
                "solve" => 2,
                "help" | "--help" | "-h" => 3,
                other => 4,
            };
        }
    "#;

    #[test]
    fn cli_subcommand_extraction() {
        assert_eq!(cli_subcommands(COMMANDS), ["gen", "solve", "help"]);
    }

    #[test]
    fn cli_clean_when_in_sync() {
        let readme = "Run `bshm gen` then `bshm solve`.";
        let args = "const BOOLEAN_FLAGS: &[&str] = &[];";
        let d = audit_cli(COMMANDS, args, readme);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cli_catches_undocumented_subcommand() {
        let readme = "Run `bshm gen` only.";
        let args = "const BOOLEAN_FLAGS: &[&str] = &[];";
        let d = audit_cli(COMMANDS, args, readme);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`solve`"));
        assert!(d[0].file.contains("README"));
    }

    #[test]
    fn cli_catches_phantom_documented_subcommand() {
        let readme = "Run `bshm gen`, `bshm solve` and `bshm frobnicate`.";
        let args = "const BOOLEAN_FLAGS: &[&str] = &[];";
        let d = audit_cli(COMMANDS, args, readme);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("frobnicate"));
    }

    #[test]
    fn cli_catches_undocumented_boolean_flag() {
        let readme = "`bshm gen` and `bshm solve`.";
        let args = r#"const BOOLEAN_FLAGS: &[&str] = &["metrics"];"#;
        let d = audit_cli(COMMANDS, args, readme);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("--metrics"));
    }

    #[test]
    fn bench_schema_version_extraction() {
        assert_eq!(
            bench_schema_version("pub const SCHEMA_VERSION: u64 = 3;"),
            Some(3)
        );
        assert_eq!(bench_schema_version("fn nope() {}"), None);
    }

    #[test]
    fn bench_schema_audit() {
        let rs = "pub const SCHEMA_VERSION: u64 = 1;";
        let md_ok = "The report schema is `schema_version = 1`.";
        let md_stale = "The report schema is `schema_version = 9`.";
        let json_ok = (
            "BENCH_X.json".to_string(),
            "{\"schema_version\": 1}".to_string(),
        );
        let json_bad = (
            "BENCH_Y.json".to_string(),
            "{\"schema_version\": 2}".to_string(),
        );
        assert!(audit_bench_schema(rs, md_ok, std::slice::from_ref(&json_ok)).is_empty());
        let d = audit_bench_schema(rs, md_stale, &[json_bad]);
        assert_eq!(d.len(), 2, "{d:?}");
        let d = audit_bench_schema(rs, "no mention", &[json_ok]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("does not state"));
    }

    fn full_manifest() -> String {
        let rules: Vec<String> = crate::rules::RULES
            .iter()
            .map(|r| format!("\"{}\"", r.name))
            .collect();
        let auds: Vec<String> = DRIFT_AUDITORS.iter().map(|a| format!("\"{a}\"")).collect();
        format!(
            "{{\n  \"rules\": [{}],\n  \"drift_auditors\": [{}]\n}}\n",
            rules.join(", "),
            auds.join(", ")
        )
    }

    fn full_taxonomy() -> String {
        crate::rules::RULES
            .iter()
            .map(|r| format!("| `{}` | x |\n", r.name))
            .collect()
    }

    #[test]
    fn json_string_array_extraction() {
        let j = "{\"rules\": [\"a\", \"b\"], \"other\": []}";
        assert_eq!(json_string_array(j, "rules").unwrap(), ["a", "b"]);
        assert_eq!(json_string_array(j, "other").unwrap(), Vec::<String>::new());
        assert!(json_string_array(j, "missing").is_none());
    }

    #[test]
    fn rules_manifest_clean_when_in_sync() {
        let tax = full_taxonomy();
        let d = audit_rules_manifest(&full_manifest(), &tax, &tax);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rules_manifest_catches_missing_and_unknown_rules() {
        let tax = full_taxonomy();
        // Drop one registered rule from the manifest.
        let missing = full_manifest().replace("\"no-panic\", ", "");
        let d = audit_rules_manifest(&missing, &tax, &tax);
        assert!(
            d.iter().any(|d| d.message.contains("`no-panic`")
                && d.message.contains("missing from the manifest")),
            "{d:?}"
        );
        // Add a rule the registry does not know.
        let phantom = full_manifest().replace("\"no-panic\"", "\"no-panic\", \"made-up\"");
        let d = audit_rules_manifest(&phantom, &tax, &tax);
        assert!(
            d.iter()
                .any(|d| d.message.contains("`made-up`") && d.message.contains("not registered")),
            "{d:?}"
        );
        // No rules array at all.
        let d = audit_rules_manifest("{}", &tax, &tax);
        assert!(d.iter().any(|d| d.message.contains("no `rules` array")));
    }

    #[test]
    fn rules_manifest_catches_doc_and_generator_drift() {
        let tax = full_taxonomy();
        let gutted = tax.replace("`taint-path`", "`taint–path`");
        let d = audit_rules_manifest(&full_manifest(), &gutted, &tax);
        assert!(
            d.iter()
                .any(|d| d.file == "EXPERIMENTS.md" && d.message.contains("`taint-path`")),
            "{d:?}"
        );
        let d = audit_rules_manifest(&full_manifest(), &tax, &gutted);
        assert!(d.iter().any(|d| d.file.contains("reproduce.rs")), "{d:?}");
    }

    #[test]
    fn documented_subcommands_ignore_crate_names() {
        let text = "bshm-core is a crate; run bshm gen or\nbshm   solve.";
        assert_eq!(documented_subcommands(text), ["gen", "solve"]);
    }
}
