//! Layer 3: the determinism taint engine and the concurrency-readiness
//! audit.
//!
//! Every guarantee downstream of a trace — byte-identical replay, alert
//! ledgers, checkpoint digests, bench baselines — holds only if the values
//! written there are functions of the input alone. This pass finds the
//! places where they are not: **sources** of nondeterminism (wall-clock
//! reads, unseeded RNG, unordered `HashMap`/`HashSet` iteration,
//! environment/thread-id reads, pointer-address casts) whose values can
//! reach a **sink** (TraceEvent emission or folding, bench baseline
//! writers, checkpoint digests, SLO alert stamping) along the call graph.
//!
//! Propagation is deliberately coarse — function-level, not value-level:
//! a fn containing a source taints every transitive caller (the value
//! escapes through returns/out-params in the worst case), and a source is
//! reported when any fn in that caller closure can also reach a sink
//! through its callees. Combined with the graph's over-approximated
//! method edges this can only over-report, so a clean run is a real
//! guarantee; false positives are silenced per line with
//! `// bshm-allow(taint-path): reason` and surface in the report's
//! suppression list.
//!
//! The **concurrency audit** is the pre-flight gate for sharded solving
//! (ROADMAP item 1): starting from the solver entry points (every
//! non-test fn in `crates/algos`, plus `run_online*` in sim), it walks
//! callees and flags unordered-collection iteration and interior-
//! mutability types (`RefCell`, `Cell`, `UnsafeCell`, `Rc`) inside the
//! reachable set — state that breaks determinism or `Send`-safety the
//! moment the 12 algorithm decision paths run on a work-stealing pool.

use crate::diag::Diagnostic;
use crate::graph::{CallGraph, ParsedFile};
use crate::lexer::TokKind;
use crate::rules::unordered_iter_sites;
use serde::Serialize;
use std::collections::BTreeMap;

/// Kinds of nondeterminism sources the engine recognizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum SourceKind {
    /// `Instant::now`/`SystemTime::now` outside the sanctioned span layer.
    WallClock,
    /// `thread_rng`/`from_entropy`/`OsRng`/`rand::random` — RNG without a
    /// seed recorded in the instance.
    UnseededRng,
    /// Iteration over `HashMap`/`HashSet` (order varies per process).
    UnorderedIter,
    /// `env::var*`/`env::temp_dir`/`process::id` reads.
    EnvRead,
    /// `thread::current().id()`-style thread identity.
    ThreadId,
    /// Pointer-address observation (`as *const _ as usize`).
    PtrAddr,
}

impl SourceKind {
    fn describe(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock read",
            SourceKind::UnseededRng => "unseeded RNG",
            SourceKind::UnorderedIter => "unordered HashMap/HashSet iteration",
            SourceKind::EnvRead => "environment read",
            SourceKind::ThreadId => "thread-identity read",
            SourceKind::PtrAddr => "pointer-address observation",
        }
    }
}

/// Kinds of determinism-sensitive sinks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum SinkKind {
    /// TraceEvent construction or folding (replay must be byte-identical).
    TraceEmit,
    /// Bench baseline report writer (`write_report`).
    BenchWrite,
    /// Checkpoint digest (`instance_digest`).
    CheckpointDigest,
    /// SLO alert stamping (`AlertReason`).
    AlertStamp,
}

impl SinkKind {
    fn describe(self) -> &'static str {
        match self {
            SinkKind::TraceEmit => "TraceEvent emission/fold",
            SinkKind::BenchWrite => "bench baseline writer",
            SinkKind::CheckpointDigest => "checkpoint digest",
            SinkKind::AlertStamp => "SLO alert stamp",
        }
    }
}

/// One source occurrence, attached to the fn whose body contains it.
struct SourceSite {
    kind: SourceKind,
    file: usize,
    line: u32,
    node: usize,
    what: String,
}

/// Serializable taint summary — the `--taint` CI artifact.
#[derive(Debug, Serialize)]
pub struct TaintReport {
    /// Source occurrences found in non-test code (pre-pragma).
    pub sources: usize,
    /// Source occurrences by kind name.
    pub sources_by_kind: BTreeMap<String, usize>,
    /// Fns containing at least one sink.
    pub sink_fns: usize,
    /// Fns in the tainted closure (contain or transitively call a source).
    pub tainted_fns: usize,
    /// Raw source→sink findings before pragma filtering.
    pub raw_findings: usize,
    /// Pragma-suppressed findings, with their reasons (filled by the
    /// engine after pragma application).
    pub suppressed: Vec<SuppressedPath>,
    /// Concurrency-readiness audit summary.
    pub audit: AuditSummary,
}

/// A `taint-path`/`concurrency-audit` finding silenced by a pragma.
#[derive(Clone, Debug, Serialize)]
pub struct SuppressedPath {
    /// Rule the pragma names.
    pub rule: String,
    /// File of the pragma.
    pub file: String,
    /// Line of the pragma.
    pub line: u32,
    /// The justification the pragma carries.
    pub reason: String,
}

/// Concurrency-readiness audit counters.
#[derive(Debug, Default, Serialize)]
pub struct AuditSummary {
    /// Solver entry points (non-test algos fns + sim `run_online*`).
    pub entry_points: usize,
    /// Fns reachable from those entry points.
    pub reachable_fns: usize,
    /// Unordered-iteration sites inside the reachable set (pre-pragma).
    pub unordered_iter_reachable: usize,
    /// Interior-mutability mentions inside the reachable set (pre-pragma).
    pub interior_mutability_reachable: usize,
    /// Non-test `static mut` items in library crates.
    pub shared_mutable_statics: usize,
}

/// Interior-mutability / non-`Send` types the audit flags.
const INTERIOR_MUT: [&str; 4] = ["RefCell", "Cell", "UnsafeCell", "Rc"];

/// Runs taint propagation and the concurrency audit over the workspace.
/// Returns raw findings (pragma filtering happens in the engine) plus the
/// report skeleton (`suppressed` left empty for the engine to fill).
#[must_use]
pub fn analyze(files: &[ParsedFile], graph: &CallGraph) -> (Vec<Diagnostic>, TaintReport) {
    let sources = collect_sources(files, graph);
    let sinks = collect_sinks(files, graph);

    // Tainted closure: fns containing a source, plus transitive callers
    // (the nondeterministic value escapes upward through return values).
    let source_nodes: Vec<usize> = sources.iter().map(|s| s.node).collect();
    let tainted = graph.callers_of(&source_nodes);

    // Sink-reaching: fns containing a sink, plus transitive callers
    // (a caller of a sink-containing fn can feed it arguments).
    let sink_nodes: Vec<usize> = sinks.keys().copied().collect();
    let sink_reach = graph.callers_of(&sink_nodes);

    // A source fires when some fn both holds the tainted value and can
    // reach a sink: `danger[n]` = some fn in callers*(n) is sink-reaching.
    // Seed with sink-reaching fns and push the flag down callee edges —
    // if a caller is dangerous, everything it calls feeds a dangerous
    // context.
    let danger_seeds: Vec<usize> = (0..graph.nodes.len()).filter(|&n| sink_reach[n]).collect();
    let danger = graph.reachable_from(&danger_seeds);

    let mut findings = Vec::new();
    for s in &sources {
        if !danger[s.node] {
            continue;
        }
        let (via, sink_node, sink_kind) = witness_path(graph, &sinks, &sink_reach, s.node);
        let sink_desc = match (sink_node, sink_kind) {
            (Some(sn), Some(sk)) => {
                format!("{} sink `{}`", sk.describe(), graph.nodes[sn].key)
            }
            _ => "a determinism sink".to_string(),
        };
        findings.push(Diagnostic::error(
            "taint-path",
            &files[s.file].rel,
            s.line,
            format!(
                "{} ({}) in `{}` can reach {}{}; make the value input-deterministic or justify with `// bshm-allow(taint-path): reason`",
                s.kind.describe(),
                s.what,
                graph.nodes[s.node].key,
                sink_desc,
                via
            ),
        ));
    }

    // Concurrency-readiness audit.
    let mut audit = AuditSummary::default();
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            !n.is_test
                && (n.crate_name == "algos"
                    || (n.crate_name == "sim" && n.key.contains("::run_online")))
        })
        .map(|(i, _)| i)
        .collect();
    audit.entry_points = entries.len();
    let reachable = graph.reachable_from(&entries);
    audit.reachable_fns = reachable.iter().filter(|&&r| r).count();
    for s in &sources {
        if s.kind == SourceKind::UnorderedIter && reachable[s.node] {
            audit.unordered_iter_reachable += 1;
            findings.push(Diagnostic::error(
                "concurrency-audit",
                &files[s.file].rel,
                s.line,
                format!(
                    "unordered iteration ({}) in `{}` is reachable from the solver entry points; sharded solving (ROADMAP item 1) would make its order racy — switch to BTreeMap/BTreeSet, or justify with `// bshm-allow(concurrency-audit): reason`",
                    s.what,
                    graph.nodes[s.node].key
                ),
            ));
        }
    }
    for (fi, pf) in files.iter().enumerate() {
        if pf.ctx.crate_name == "analyze" {
            continue;
        }
        for (ti, t) in pf.code.iter().enumerate() {
            if t.kind != TokKind::Ident || !INTERIOR_MUT.contains(&t.text.as_str()) {
                continue;
            }
            if pf.mask.get(ti).copied().unwrap_or(false) {
                continue;
            }
            let Some(node) = graph.owner_of(fi, ti) else {
                continue;
            };
            if !reachable[node] {
                continue;
            }
            audit.interior_mutability_reachable += 1;
            findings.push(Diagnostic::error(
                "concurrency-audit",
                &pf.rel,
                t.line,
                format!(
                    "interior-mutability type `{}` in `{}` is reachable from the solver entry points; it is not safely shareable across a work-stealing pool — use owned state or Sync primitives, or justify with `// bshm-allow(concurrency-audit): reason`",
                    t.text,
                    graph.nodes[node].key
                ),
            ));
        }
        // Shared mutable statics are counted workspace-wide for library
        // crates; the per-file `shared-mutable-static` rule carries the
        // line-level diagnostic.
        if pf.ctx.strict_library {
            audit.shared_mutable_statics += pf
                .items
                .statics
                .iter()
                .filter(|s| s.is_mut && !s.is_test)
                .count();
        }
    }

    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    for s in &sources {
        *by_kind.entry(format!("{:?}", s.kind)).or_default() += 1;
    }
    let report = TaintReport {
        sources: sources.len(),
        sources_by_kind: by_kind,
        sink_fns: sinks.len(),
        tainted_fns: tainted.iter().filter(|&&t| t).count(),
        raw_findings: findings.len(),
        suppressed: Vec::new(),
        audit,
    };
    (findings, report)
}

/// Reconstructs a human-readable witness: the chain of callers from the
/// source fn up to the first sink-reaching fn, then down to the sink.
fn witness_path(
    graph: &CallGraph,
    sinks: &BTreeMap<usize, SinkKind>,
    sink_reach: &[bool],
    source_node: usize,
) -> (String, Option<usize>, Option<SinkKind>) {
    // Up-phase BFS: source_node → nearest caller that reaches a sink.
    let up = bfs_to(graph, source_node, &graph.callers, &|n| sink_reach[n]);
    let Some(up_chain) = up else {
        return (String::new(), None, None);
    };
    let pivot = *up_chain.last().unwrap_or(&source_node);
    // Down-phase BFS: pivot → nearest sink-containing fn via callees.
    let down = bfs_to(graph, pivot, &graph.callees, &|n| sinks.contains_key(&n));
    let Some(down_chain) = down else {
        return (String::new(), None, None);
    };
    let sink_node = *down_chain.last().unwrap_or(&pivot);
    let kind = sinks.get(&sink_node).copied();
    // Render at most a handful of hops: `via a ← b → c`.
    let mut hops: Vec<String> = Vec::new();
    for &n in up_chain.iter().skip(1).take(3) {
        hops.push(format!("← `{}`", graph.nodes[n].key));
    }
    for &n in down_chain.iter().skip(1).take(3) {
        hops.push(format!("→ `{}`", graph.nodes[n].key));
    }
    let via = if hops.is_empty() {
        String::new()
    } else {
        format!(" (via {})", hops.join(" "))
    };
    (via, Some(sink_node), kind)
}

/// Shortest path from `start` along `adj` to any node satisfying `goal`,
/// returned as the node chain `[start, …, goal]`.
fn bfs_to(
    graph: &CallGraph,
    start: usize,
    adj: &[Vec<usize>],
    goal: &dyn Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut seen = vec![false; graph.nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        if goal(n) {
            let mut chain = vec![n];
            let mut cur = n;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return Some(chain);
        }
        for &m in &adj[n] {
            if !seen[m] {
                seen[m] = true;
                parent[m] = Some(n);
                queue.push_back(m);
            }
        }
    }
    None
}

/// Scans every file for source occurrences in non-test fn bodies.
fn collect_sources(files: &[ParsedFile], graph: &CallGraph) -> Vec<SourceSite> {
    let mut out = Vec::new();
    for (fi, pf) in files.iter().enumerate() {
        // The analyzer's own pattern tables would light up every detector.
        if pf.ctx.crate_name == "analyze" || pf.ctx.all_test {
            continue;
        }
        let live = |i: usize| !pf.mask.get(i).copied().unwrap_or(false);
        let push =
            |idx: usize, line: u32, kind: SourceKind, what: String, out: &mut Vec<SourceSite>| {
                if let Some(node) = graph.owner_of(fi, idx) {
                    if !graph.nodes[node].is_test {
                        out.push(SourceSite {
                            kind,
                            file: fi,
                            line,
                            node,
                            what,
                        });
                    }
                }
            };
        for (i, t) in pf.code.iter().enumerate() {
            if !live(i) || t.kind != TokKind::Ident {
                continue;
            }
            let path2 = |head: &str, tail: &[&str]| {
                t.is_ident(head)
                    && pf.code.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && pf
                        .code
                        .get(i + 2)
                        .is_some_and(|n| tail.iter().any(|m| n.is_ident(m)))
            };
            let seg2 = |i: usize| pf.code.get(i + 2).map_or(String::new(), |n| n.text.clone());
            // Wall-clock — except the sanctioned span boundary.
            if !pf.rel.ends_with("obs/src/span.rs")
                && (path2("Instant", &["now"]) || path2("SystemTime", &["now"]))
            {
                push(
                    i,
                    t.line,
                    SourceKind::WallClock,
                    format!("{}::now", t.text),
                    &mut out,
                );
            }
            // Unseeded RNG.
            if matches!(t.text.as_str(), "thread_rng" | "from_entropy")
                || t.is_ident("OsRng")
                || path2("rand", &["random"])
            {
                push(i, t.line, SourceKind::UnseededRng, t.text.clone(), &mut out);
            }
            // Environment reads.
            if path2("env", &["var", "vars", "var_os", "temp_dir"]) || path2("process", &["id"]) {
                push(
                    i,
                    t.line,
                    SourceKind::EnvRead,
                    format!("{}::{}", t.text, seg2(i)),
                    &mut out,
                );
            }
            // Thread identity.
            if path2("thread", &["current"]) || t.is_ident("ThreadId") {
                push(i, t.line, SourceKind::ThreadId, t.text.clone(), &mut out);
            }
            // Pointer-address observation: `as *const/mut … as usize`.
            if t.is_ident("as")
                && pf.code.get(i + 1).is_some_and(|n| n.is_punct("*"))
                && pf
                    .code
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("const") || n.is_ident("mut"))
            {
                let addr_cast = pf.code[i + 3..(i + 19).min(pf.code.len())]
                    .windows(2)
                    .any(|w| w[0].is_ident("as") && w[1].is_ident("usize"));
                if addr_cast {
                    push(
                        i,
                        t.line,
                        SourceKind::PtrAddr,
                        "as *const _ as usize".to_string(),
                        &mut out,
                    );
                }
            }
        }
        // Unordered-collection iteration (shared with the per-file rule).
        for site in unordered_iter_sites(&pf.code, &live) {
            push(
                site.idx,
                site.line,
                SourceKind::UnorderedIter,
                site.what,
                &mut out,
            );
        }
    }
    out
}

/// Finds sink-containing fns: node id → the (first) sink kind inside.
fn collect_sinks(files: &[ParsedFile], graph: &CallGraph) -> BTreeMap<usize, SinkKind> {
    let mut out = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        if pf.ctx.crate_name == "analyze" || pf.ctx.all_test {
            continue;
        }
        for (i, t) in pf.code.iter().enumerate() {
            if t.kind != TokKind::Ident || pf.mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let kind = match t.text.as_str() {
                "TraceEvent" => SinkKind::TraceEmit,
                "write_report" => SinkKind::BenchWrite,
                "instance_digest" => SinkKind::CheckpointDigest,
                "AlertReason" => SinkKind::AlertStamp,
                _ => continue,
            };
            if let Some(node) = graph.owner_of(fi, i) {
                if !graph.nodes[node].is_test {
                    out.entry(node).or_insert(kind);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_regions;
    use crate::graph::build;
    use crate::lexer::tokenize;

    fn parse(rel: &str, src: &str) -> ParsedFile {
        let toks = tokenize(src);
        let mask = test_regions(&toks);
        ParsedFile::build(rel, &toks, &mask)
    }

    fn run(files: Vec<ParsedFile>) -> (Vec<Diagnostic>, TaintReport) {
        let graph = build(&files);
        analyze(&files, &graph)
    }

    #[test]
    fn wall_clock_to_trace_event_path_is_flagged() {
        // The ISSUE's acceptance fixture: a wall-clock read whose value
        // flows through a caller into a TraceEvent emission.
        let files = vec![
            parse(
                "crates/sim/src/stamp.rs",
                "pub fn stamp() -> u64 { let t = Instant::now(); elapsed(t) }\nfn elapsed(_t: u64) -> u64 { 0 }\n",
            ),
            parse(
                "crates/sim/src/emit.rs",
                "pub fn emit(p: &Probe) { let s = stamp(); p.record(TraceEvent::Arrival { t: s }); }\n",
            ),
        ];
        let (findings, report) = run(files);
        assert!(
            findings.iter().any(|d| d.rule == "taint-path"
                && d.file == "crates/sim/src/stamp.rs"
                && d.message.contains("wall-clock")
                && d.message.contains("TraceEvent")),
            "{findings:?}"
        );
        assert_eq!(report.sources, 1);
        assert!(report.raw_findings >= 1);
    }

    #[test]
    fn source_without_sink_path_is_silent() {
        // A wall-clock read in a fn nothing sink-shaped ever calls.
        let files = vec![parse(
            "crates/sim/src/lonely.rs",
            "pub fn lonely() -> u64 { let _t = Instant::now(); 0 }\n",
        )];
        let (findings, report) = run(files);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(report.sources, 1);
        assert_eq!(report.raw_findings, 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let files = vec![parse(
            "crates/sim/src/t.rs",
            "pub fn emit(p: &Probe) { p.record(TraceEvent::Tick); }\n#[cfg(test)]\nmod tests { fn f() { let _ = Instant::now(); super::emit(&p); } }\n",
        )];
        let (findings, report) = run(files);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(report.sources, 0);
    }

    #[test]
    fn unordered_iter_reachable_from_solver_trips_audit() {
        let files = vec![
            parse(
                "crates/algos/src/solver.rs",
                "pub fn dec_offline() { helper(); }\n",
            ),
            parse(
                "crates/core/src/state.rs",
                "pub fn helper() { let m: HashMap<u32, u32> = HashMap::new(); for v in m.values() { let _ = v; } }\n",
            ),
        ];
        let (findings, report) = run(files);
        assert!(
            findings
                .iter()
                .any(|d| d.rule == "concurrency-audit" && d.file == "crates/core/src/state.rs"),
            "{findings:?}"
        );
        assert_eq!(report.audit.unordered_iter_reachable, 1);
        assert!(report.audit.entry_points >= 1);
    }

    #[test]
    fn interior_mutability_reachable_trips_audit() {
        let files = vec![parse(
            "crates/algos/src/cellular.rs",
            "pub fn plan() { let c = RefCell::new(0u32); let _ = c; }\n",
        )];
        let (findings, report) = run(files);
        assert!(
            findings
                .iter()
                .any(|d| d.rule == "concurrency-audit" && d.message.contains("RefCell")),
            "{findings:?}"
        );
        assert_eq!(report.audit.interior_mutability_reachable, 1);
    }

    #[test]
    fn interior_mutability_off_solver_paths_is_quiet() {
        // Same token in a crate the solvers never call: audit stays quiet.
        let files = vec![parse(
            "crates/cli/src/render.rs",
            "pub fn paint() { let c = RefCell::new(0u32); let _ = c; }\n",
        )];
        let (findings, report) = run(files);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(report.audit.interior_mutability_reachable, 0);
    }

    #[test]
    fn env_read_reaching_bench_writer_is_flagged() {
        let files = vec![parse(
            "crates/bench/src/drive.rs",
            "pub fn drive() { let d = env::var(\"OUT\"); save(d); }\nfn save(_d: Result<String, E>) { write_report(&r, &p); }\n",
        )];
        let (findings, _) = run(files);
        assert!(
            findings
                .iter()
                .any(|d| d.rule == "taint-path" && d.message.contains("environment read")),
            "{findings:?}"
        );
    }

    #[test]
    fn static_mut_is_counted() {
        let files = vec![parse(
            "crates/core/src/globals.rs",
            "static mut COUNTER: u64 = 0;\npub fn f() {}\n",
        )];
        let (_, report) = run(files);
        assert_eq!(report.audit.shared_mutable_statics, 1);
    }
}
