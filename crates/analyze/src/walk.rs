//! Workspace file discovery (no external deps, deterministic order).

use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, vendored dependency shims
/// (not first-party code — they mirror external crates' APIs), and VCS.
const SKIP_DIRS: [&str; 4] = ["target", "shims", ".git", "bench_results"];

/// Recursively collects `.rs` files under `root`, skipping [`SKIP_DIRS`],
/// sorted by path for stable output.
#[must_use]
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// `path` relative to `root`, with forward slashes.
#[must_use]
pub fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Committed `BENCH_*.json` baselines at the workspace root.
#[must_use]
pub fn bench_baselines(root: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(root) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            if let Ok(text) = fs::read_to_string(entry.path()) {
                out.push((name, text));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_file_and_skips_shims() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_files(&root);
        let rels: Vec<String> = files.iter().map(|p| rel(&root, p)).collect();
        assert!(rels.iter().any(|p| p == "crates/analyze/src/walk.rs"));
        assert!(rels.iter().any(|p| p == "crates/core/src/time.rs"));
        assert!(!rels.iter().any(|p| p.contains("shims")));
        assert!(!rels.iter().any(|p| p.contains("target/")));
        // Deterministic order.
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }

    #[test]
    fn finds_committed_baselines() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let baselines = bench_baselines(&root);
        assert!(baselines.iter().any(|(n, _)| n.starts_with("BENCH_")));
    }
}
