//! A comment-, string- and raw-string-aware Rust tokenizer.
//!
//! This is not a full Rust lexer: it produces exactly the token stream the
//! rule engine needs — identifiers, numeric literals split into int/float,
//! string/char literals, comments (kept, since pragmas live in them), and
//! operator/punctuation tokens with the handful of two-character operators
//! the rules inspect (`==`, `!=`, `::`, `->`, `=>`, `&&`, `||`, `..`)
//! fused. Everything carries a 1-based line number so diagnostics point at
//! source.
//!
//! The tricky parts it does handle, because naive scanners get them wrong:
//! nested block comments, raw strings with arbitrary `#` fences (and their
//! byte/raw-byte cousins), raw identifiers (`r#fn`), char literals versus
//! lifetimes (`'a'` vs `'a`), and float literals versus range expressions
//! (`1.5` vs `0..10`).

/// What a token is, with the payload rules care about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// Integer literal (any base, any suffix except a float suffix).
    Int,
    /// Float literal (`1.5`, `1e-9`, `2f64`, …).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`), loop label included.
    Lifetime,
    /// `// …` comment, text includes the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested), text includes delimiters.
    BlockComment,
    /// Operator or punctuation: single char, or one of the fused pairs.
    Punct,
}

/// One token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// Whether the token is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Two-character operators kept as single tokens (checked in order).
const FUSED: [&str; 8] = ["==", "!=", "::", "->", "=>", "&&", "||", ".."];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, counting newlines. Saturates at end of input so
    /// a truncated literal (`"\` at EOF) can never push `pos` past the
    /// buffer and panic the slice in [`Lexer::slice_from`].
    fn bump(&mut self) {
        if self.pos >= self.src.len() {
            return;
        }
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn slice_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes `//` to end of line.
    fn line_comment(&mut self) -> (TokKind, usize) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        (TokKind::LineComment, start)
    }

    /// Consumes `/* … */` honouring nesting.
    fn block_comment(&mut self) -> (TokKind, usize) {
        let start = self.pos;
        self.bump_n(2);
        let mut depth = 1u32;
        while depth > 0 {
            if self.starts_with("/*") {
                depth += 1;
                self.bump_n(2);
            } else if self.starts_with("*/") {
                depth -= 1;
                self.bump_n(2);
            } else if self.peek(0).is_none() {
                break; // unterminated: tolerate, we are a linter not a compiler
            } else {
                self.bump();
            }
        }
        (TokKind::BlockComment, start)
    }

    /// Consumes a `"…"` string body after the opening quote position.
    fn quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == b'\\' {
                self.bump();
                self.bump();
            } else if c == quote {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw string starting at `r`/`br` (pos on the `r`'s hash
    /// run start). Returns false if it was not actually a raw string.
    fn raw_string(&mut self) -> bool {
        let mut ahead = 0;
        let mut hashes = 0;
        while self.peek(ahead) == Some(b'#') {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != Some(b'"') {
            return false;
        }
        self.bump_n(ahead + 1); // hashes + opening quote
        let fence: String = format!("\"{}", "#".repeat(hashes));
        while self.peek(0).is_some() {
            if self.starts_with(&fence) {
                self.bump_n(fence.len());
                return true;
            }
            self.bump();
        }
        true // unterminated: tolerate
    }

    fn ident_tail(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes a numeric literal, deciding int vs float.
    fn number(&mut self) -> TokKind {
        let hex_ish = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        if hex_ish {
            self.bump_n(2);
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return TokKind::Int;
        }
        let mut is_float = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        // `1.5` is a float; `0..10` and `1.method()` are not.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent: `1e9`, `1.5e-9`.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let mut ahead = 1;
            if matches!(self.peek(1), Some(b'+' | b'-')) {
                ahead = 2;
            }
            if self.peek(ahead).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump_n(ahead);
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix: `1u64` stays int, `1f64` becomes float.
        if self.starts_with("f32") || self.starts_with("f64") {
            is_float = true;
            self.bump_n(3);
        } else {
            let before = self.pos;
            self.ident_tail();
            let _ = before;
        }
        if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }
}

/// Tokenizes `src`. Never fails: malformed input degrades to punct tokens.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        let start = lx.pos;
        let kind = match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
                continue;
            }
            b'/' if lx.peek(1) == Some(b'/') => lx.line_comment().0,
            b'/' if lx.peek(1) == Some(b'*') => lx.block_comment().0,
            b'"' => {
                lx.quoted(b'"');
                TokKind::Str
            }
            b'r' | b'b' => {
                // Raw strings, byte strings, raw idents — or a plain ident.
                let (skip, could_raw) = match (c, lx.peek(1)) {
                    (b'r', Some(b'"' | b'#')) => (1, true),
                    (b'b', Some(b'"')) => (1, false), // b"…"
                    (b'b', Some(b'r')) if matches!(lx.peek(2), Some(b'"' | b'#')) => (2, true),
                    (b'b', Some(b'\'')) => {
                        lx.bump();
                        lx.quoted(b'\'');
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: lx.slice_from(start),
                            line,
                        });
                        continue;
                    }
                    _ => {
                        lx.ident_tail();
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            text: lx.slice_from(start),
                            line,
                        });
                        continue;
                    }
                };
                if could_raw {
                    lx.bump_n(skip);
                    if lx.raw_string() {
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: lx.slice_from(start),
                            line,
                        });
                        continue;
                    }
                    // `r#ident`: raw identifier.
                    if lx.peek(0) == Some(b'#') {
                        lx.bump();
                    }
                    lx.ident_tail();
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: lx.slice_from(start),
                        line,
                    });
                    continue;
                }
                // b"…"
                lx.bump_n(skip);
                lx.quoted(b'"');
                TokKind::Str
            }
            b'\'' => {
                // Lifetime vs char literal.
                let is_lifetime = lx
                    .peek(1)
                    .is_some_and(|c2| c2.is_ascii_alphabetic() || c2 == b'_')
                    && lx.peek(2) != Some(b'\'');
                if is_lifetime {
                    lx.bump();
                    lx.ident_tail();
                    TokKind::Lifetime
                } else {
                    lx.quoted(b'\'');
                    TokKind::Char
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                lx.ident_tail();
                TokKind::Ident
            }
            c if c.is_ascii_digit() => lx.number(),
            _ => {
                let fused = FUSED.iter().find(|op| lx.starts_with(op));
                match fused {
                    Some(op) => lx.bump_n(op.len()),
                    None => lx.bump(),
                }
                TokKind::Punct
            }
        };
        toks.push(Tok {
            kind,
            text: lx.slice_from(start),
            line,
        });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn fused_operators() {
        let toks = kinds("a == b != c :: d -> e .. f");
        let ops: Vec<String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(ops, ["==", "!=", "::", "->", ".."]);
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(kinds("1")[0].0, TokKind::Int);
        assert_eq!(kinds("0x1f")[0].0, TokKind::Int);
        assert_eq!(kinds("1u64")[0].0, TokKind::Int);
        assert_eq!(kinds("1.5")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-9")[0].0, TokKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokKind::Float);
        // Range is two ints and a `..`, not a float.
        let r = kinds("0..10");
        assert_eq!(r[0].0, TokKind::Int);
        assert_eq!(r[1], (TokKind::Punct, "..".into()));
        assert_eq!(r[2].0, TokKind::Int);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"f("a.unwrap() // not a comment")"#);
        assert_eq!(toks[2].0, TokKind::Str);
        assert_eq!(toks.len(), 4); // f ( str )
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"let s = r#"quote " inside"#;"###);
        assert_eq!(toks[3].0, TokKind::Str);
        assert!(toks[3].1.contains("quote"));
        let toks = kinds("let s = br#\"bytes\"#;");
        assert_eq!(toks[3].0, TokKind::Str);
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#fn");
        assert_eq!(toks[0], (TokKind::Ident, "r#fn".into()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(c: char) { let x = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Char && t == "'\\n'"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn line_numbers() {
        let toks = tokenize("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn nested_raw_string_fences() {
        // An `r#"…"#` fence closing quote inside an `r##"…"##` body must
        // not terminate the outer string early.
        let toks = kinds("let s = r##\"outer r#\"inner\"# rest\"##; x");
        assert_eq!(toks[3].0, TokKind::Str);
        assert!(toks[3].1.contains("inner"), "{:?}", toks[3].1);
        assert!(toks[3].1.contains("rest"), "{:?}", toks[3].1);
        assert_eq!(toks.last().unwrap(), &(TokKind::Ident, "x".into()));
        // Quotes inside a single-hash raw string.
        let toks = kinds("r#\"say \"hi\" loud\"#");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].1.contains("\"hi\""));
    }

    #[test]
    fn byte_string_literals() {
        let toks = kinds("let b = b\"bytes \\\" escaped\"; y");
        assert_eq!(toks[3].0, TokKind::Str);
        assert!(toks[3].1.starts_with("b\""));
        assert_eq!(toks.last().unwrap(), &(TokKind::Ident, "y".into()));
        let toks = kinds("br##\"raw bytes \"# inside\"##");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks[0].1.contains("inside"));
    }

    #[test]
    fn truncated_literals_do_not_panic() {
        // A trailing escape at EOF used to push the cursor past the buffer.
        for src in ["\"\\", "'\\", "b\"\\", "r#\"open", "/* open", "\"open"] {
            let toks = tokenize(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn doc_comment_code_fences_stay_comments() {
        // Attribute-looking text inside `///` code fences must remain part
        // of the comment token: test-region masking walks punct tokens, so
        // a `#[test]` that leaked out of the comment would mask live code.
        let src = "/// ```\n/// #[test]\n/// fn case() { x.unwrap(); }\n/// ```\nfn live() {}\n";
        let toks = tokenize(src);
        let comments: Vec<_> = toks.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(comments.len(), 4);
        assert!(comments[1].text.contains("#[test]"));
        // No punct `#` escaped the comments.
        assert!(!toks.iter().any(|t| t.is_punct("#")), "{toks:?}");
        assert!(toks.iter().any(|t| t.is_ident("live")));
    }

    #[test]
    fn comment_text_preserved_for_pragmas() {
        let toks = tokenize("x(); // bshm-allow(no-panic): test fixture\n");
        let c = toks.iter().find(|t| t.is_comment()).unwrap();
        assert!(c.text.contains("bshm-allow(no-panic)"));
        assert_eq!(c.line, 1);
    }
}
