//! CLI entry point: `cargo run -p bshm-analyze [-- OPTIONS]`.
//!
//! Options:
//!   --format human|json   output format (default human)
//!   --out FILE            also write the JSON report to FILE
//!   --root DIR            workspace root (default: auto-detect)
//!   --list-rules          print the rule table and exit
//!
//! Exit status: 0 when no error-severity diagnostics remain, 1 otherwise,
//! 2 on usage/IO errors.

use bshm_analyze::{analyze_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "human".to_string();
    let mut out_path: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = it
                    .next()
                    .ok_or_else(|| "--format expects human|json".to_string())?
                    .clone();
            }
            "--out" => {
                out_path = Some(
                    it.next()
                        .ok_or_else(|| "--out expects a path".to_string())?
                        .clone(),
                );
            }
            "--root" => {
                root = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root expects a path".to_string())?,
                ));
            }
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:<18} {}", r.name, r.summary);
                }
                println!("{:<18} drift: TraceEvent variants vs replay/recorder, Metrics fields vs prometheus encoder", "drift/trace-schema");
                println!(
                    "{:<18} drift: dispatch match vs USAGE vs README vs args.rs switches",
                    "drift/cli"
                );
                println!(
                    "{:<18} drift: SCHEMA_VERSION vs EXPERIMENTS.md vs committed BENCH_*.json",
                    "drift/bench-schema"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if !matches!(format.as_str(), "human" | "json") {
        return Err(format!("--format: expected human|json, got {format:?}"));
    }
    let root = match root {
        Some(r) => r,
        // The binary lives in crates/analyze; the workspace root is two up.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let report = analyze_workspace(&root)?;
    if format == "json" {
        println!("{}", report.render_json()?);
    } else {
        print!("{}", report.render_human());
    }
    if let Some(p) = out_path {
        std::fs::write(&p, report.render_json()?).map_err(|e| format!("writing {p}: {e}"))?;
    }
    Ok(report.errors == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bshm-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
