//! CLI entry point: `cargo run -p bshm-analyze [-- OPTIONS]`.
//!
//! Options:
//!   --format human|json   output format (default human)
//!   --out FILE            also write the JSON report to FILE
//!   --graph FILE          write the call-graph JSON report to FILE
//!   --taint FILE          write the taint/concurrency JSON report to FILE
//!   --root DIR            workspace root (default: auto-detect)
//!   --list-rules          print the rule table and exit
//!
//! Exit status: 0 when no error-severity diagnostics remain, 1 otherwise,
//! 2 on usage/IO errors.

use bshm_analyze::{analyze_workspace_full, drift, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "human".to_string();
    let mut out_path: Option<String> = None;
    let mut graph_path: Option<String> = None;
    let mut taint_path: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = it
                    .next()
                    .ok_or_else(|| "--format expects human|json".to_string())?
                    .clone();
            }
            "--out" => {
                out_path = Some(
                    it.next()
                        .ok_or_else(|| "--out expects a path".to_string())?
                        .clone(),
                );
            }
            "--graph" => {
                graph_path = Some(
                    it.next()
                        .ok_or_else(|| "--graph expects a path".to_string())?
                        .clone(),
                );
            }
            "--taint" => {
                taint_path = Some(
                    it.next()
                        .ok_or_else(|| "--taint expects a path".to_string())?
                        .clone(),
                );
            }
            "--root" => {
                root = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root expects a path".to_string())?,
                ));
            }
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:<22} {}", r.name, r.summary);
                }
                let drift_lines = [
                    ("drift/trace-schema", "drift: TraceEvent variants vs replay/recorder, Metrics fields vs prometheus encoder"),
                    ("drift/prometheus", "drift: Metrics fields vs the Prometheus exposition (reported under trace-schema's auditor)"),
                    ("drift/cli", "drift: dispatch match vs USAGE vs README vs args.rs switches"),
                    ("drift/bench-schema", "drift: SCHEMA_VERSION vs EXPERIMENTS.md vs committed BENCH_*.json"),
                    ("drift/rules-manifest", "drift: rule registry vs committed ANALYZE_RULES.json vs EXPERIMENTS.md taxonomy vs reproduce generator"),
                ];
                // Every auditor slug gets a line, and vice versa — the
                // self-check pins this list to drift::DRIFT_AUDITORS.
                for (slug, line) in drift_lines {
                    assert!(drift::DRIFT_AUDITORS.contains(&slug));
                    println!("{slug:<22} {line}");
                }
                return Ok(true);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if !matches!(format.as_str(), "human" | "json") {
        return Err(format!("--format: expected human|json, got {format:?}"));
    }
    let root = match root {
        Some(r) => r,
        // The binary lives in crates/analyze; the workspace root is two up.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let wa = analyze_workspace_full(&root)?;
    let report = &wa.report;
    if format == "json" {
        println!("{}", report.render_json()?);
    } else {
        print!("{}", report.render_human());
    }
    if let Some(p) = out_path {
        std::fs::write(&p, report.render_json()?).map_err(|e| format!("writing {p}: {e}"))?;
    }
    if let Some(p) = graph_path {
        let json = serde_json::to_string_pretty(&wa.graph)
            .map_err(|e| format!("serializing graph report: {e}"))?;
        std::fs::write(&p, json).map_err(|e| format!("writing {p}: {e}"))?;
    }
    if let Some(p) = taint_path {
        let json = serde_json::to_string_pretty(&wa.taint)
            .map_err(|e| format!("serializing taint report: {e}"))?;
        std::fs::write(&p, json).map_err(|e| format!("writing {p}: {e}"))?;
    }
    Ok(report.errors == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bshm-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
