//! Layer 2: a best-effort intra-workspace call graph.
//!
//! [`build`] takes every parsed file ([`ParsedFile`]) and resolves the
//! call sites in each function body against a workspace symbol table.
//! Resolution is deliberately conservative in the direction the taint
//! engine needs: a method call resolves to *every* workspace impl fn with
//! that name (over-approximating the callee set means taint can only
//! over-propagate, never silently miss a path), and anything that looks
//! workspace-local but does not match lands in an explicit `unresolved`
//! bucket that is itself part of the report — the graph admits what it
//! does not know instead of pretending completeness.
//!
//! Call sites classify four ways:
//! - **resolved** — matched one or more workspace fns; edges exist.
//! - **external** — `std`/shim paths, unmatched method names, imports
//!   from non-workspace crates.
//! - **construction** — `Type(…)` / `Enum::Variant(…)` value builders.
//! - **unresolved** — workspace-looking (a `crate::`/`bshm_*` path, a
//!   known type with an unknown assoc fn, a bare snake_case name that
//!   matches nothing — usually a closure) with no match.

use crate::context::FileContext;
use crate::items::{parse_items, FileItems};
use crate::lexer::{Tok, TokKind};
use serde::Serialize;
use std::collections::BTreeMap;

/// One file, tokenized and item-parsed, ready for graph/taint passes.
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Path classification (crate, strictness, test-ness).
    pub ctx: FileContext,
    /// Comment-free token stream.
    pub code: Vec<Tok>,
    /// Per-token test-region mask, aligned with `code`.
    pub mask: Vec<bool>,
    /// Items extracted from `code`.
    pub items: FileItems,
}

impl ParsedFile {
    /// Builds a parsed file from a raw (comment-carrying) token stream and
    /// its aligned test mask.
    #[must_use]
    pub fn build(rel: &str, toks: &[Tok], in_test: &[bool]) -> ParsedFile {
        let mut code = Vec::with_capacity(toks.len());
        let mut mask = Vec::with_capacity(toks.len());
        for (t, &flag) in toks.iter().zip(in_test) {
            if !t.is_comment() {
                code.push(t.clone());
                mask.push(flag);
            }
        }
        let items = parse_items(&code, &mask);
        ParsedFile {
            rel: rel.to_string(),
            ctx: FileContext::classify(rel),
            code,
            mask,
            items,
        }
    }
}

/// One function node in the workspace call graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the owning file in the `files` slice.
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
    /// Display key: `crate::module::SelfTy::name`.
    pub key: String,
    /// Owning crate (directory name under `crates/`).
    pub crate_name: String,
    /// Whether the fn is test-only (test region or all-test file).
    pub is_test: bool,
}

/// A call site that looked workspace-local but matched nothing.
#[derive(Clone, Debug, Serialize)]
pub struct UnresolvedCall {
    /// File of the call site.
    pub file: String,
    /// Line of the call site.
    pub line: u32,
    /// The path as written (`::`-joined).
    pub path: String,
}

/// The call graph: nodes plus forward/reverse adjacency.
pub struct CallGraph {
    /// All workspace fns, in file/item order.
    pub nodes: Vec<FnNode>,
    /// `callees[n]` — node ids `n` calls (deduplicated, sorted).
    pub callees: Vec<Vec<usize>>,
    /// `callers[n]` — node ids that call `n` (deduplicated, sorted).
    pub callers: Vec<Vec<usize>>,
    /// Per-node id of the enclosing file's fn, by (file, body token idx):
    /// `fn_at[file]` maps a token index to the node whose body contains it.
    pub owner: Vec<Vec<(usize, usize, usize)>>,
    /// Aggregate call-site classification counts and samples.
    pub report: GraphReport,
}

/// Serializable summary — the `--graph` CI artifact.
#[derive(Debug, Serialize)]
pub struct GraphReport {
    /// Workspace fns found.
    pub fns: usize,
    /// Distinct resolved edges.
    pub edges: usize,
    /// Call sites that resolved to workspace fns.
    pub calls_resolved: usize,
    /// Call sites classified external (std/shims/unmatched methods).
    pub calls_external: usize,
    /// Call sites classified as value construction.
    pub calls_construction: usize,
    /// Workspace-looking call sites with no match.
    pub calls_unresolved: usize,
    /// `calls_unresolved / (calls_resolved + calls_unresolved)`.
    pub unresolved_fraction: f64,
    /// Per-crate fn/edge counts.
    pub per_crate: BTreeMap<String, CrateGraphStats>,
    /// First [`UNRESOLVED_SAMPLE_CAP`] unresolved sites, for triage.
    pub unresolved_sample: Vec<UnresolvedCall>,
}

/// Per-crate slice of the graph summary.
#[derive(Debug, Default, Serialize)]
pub struct CrateGraphStats {
    /// Fns defined in the crate.
    pub fns: usize,
    /// Resolved call sites inside the crate's fns.
    pub calls_resolved: usize,
    /// Unresolved call sites inside the crate's fns.
    pub calls_unresolved: usize,
}

/// Cap on unresolved sites embedded in the JSON report.
pub const UNRESOLVED_SAMPLE_CAP: usize = 50;

/// Workspace lib names → crate directory names. `crate`/`self`/`super`
/// normalize to the calling file's own crate.
const LIB_TO_CRATE: [(&str, &str); 10] = [
    ("bshm_core", "core"),
    ("bshm_algos", "algos"),
    ("bshm_sim", "sim"),
    ("bshm_obs", "obs"),
    ("bshm_faults", "faults"),
    ("bshm_bench", "bench"),
    ("bshm_cli", "cli"),
    ("bshm_chart", "chart"),
    ("bshm_workload", "workload"),
    ("bshm_analyze", "analyze"),
];

/// Std-trait method names that legitimately attach to workspace types via
/// derives or blanket impls; an unmatched `Type::name` with one of these
/// is external, not unresolved.
const DERIVED_METHODS: [&str; 18] = [
    "from",
    "try_from",
    "into",
    "try_into",
    "default",
    "clone",
    "to_string",
    "from_str",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "serialize",
    "deserialize",
    "min",
    "max",
];

fn lib_to_crate(seg: &str) -> Option<&'static str> {
    LIB_TO_CRATE
        .iter()
        .find(|(lib, _)| *lib == seg)
        .map(|(_, c)| *c)
}

struct Symbols {
    /// (crate, fn name) → node ids of free fns.
    free: BTreeMap<(String, String), Vec<usize>>,
    /// Fn name → node ids of free fns anywhere (cross-crate fallback).
    free_any: BTreeMap<String, Vec<usize>>,
    /// (self type, fn name) → node ids of methods/assoc fns.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// Method name → node ids (receiver-blind `.name(…)` resolution).
    methods_any: BTreeMap<String, Vec<usize>>,
    /// Workspace type names (structs/enums/unions).
    types: BTreeMap<String, ()>,
}

/// Builds the call graph over all parsed files.
#[must_use]
pub fn build(files: &[ParsedFile]) -> CallGraph {
    // 1. Nodes and symbol tables.
    let mut nodes = Vec::new();
    let mut owner: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); files.len()];
    let mut sym = Symbols {
        free: BTreeMap::new(),
        free_any: BTreeMap::new(),
        methods: BTreeMap::new(),
        methods_any: BTreeMap::new(),
        types: BTreeMap::new(),
    };
    for (fi, pf) in files.iter().enumerate() {
        for ty in &pf.items.types {
            sym.types.insert(ty.name.clone(), ());
        }
        for (ii, f) in pf.items.fns.iter().enumerate() {
            let id = nodes.len();
            let mut key = format!("{}::", pf.ctx.crate_name);
            for m in &f.module {
                key.push_str(m);
                key.push_str("::");
            }
            if let Some(ty) = &f.self_ty {
                key.push_str(ty);
                key.push_str("::");
            }
            key.push_str(&f.name);
            nodes.push(FnNode {
                file: fi,
                item: ii,
                key,
                crate_name: pf.ctx.crate_name.clone(),
                is_test: f.is_test || pf.ctx.all_test,
            });
            if let Some((s, e)) = f.body {
                owner[fi].push((s, e, id));
            }
            match &f.self_ty {
                Some(ty) => {
                    sym.methods
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    sym.methods_any.entry(f.name.clone()).or_default().push(id);
                }
                None => {
                    sym.free
                        .entry((pf.ctx.crate_name.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    sym.free_any.entry(f.name.clone()).or_default().push(id);
                }
            }
        }
        owner[fi].sort_unstable();
    }

    // 2. Call extraction + resolution per fn body.
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut report = GraphReport {
        fns: nodes.len(),
        edges: 0,
        calls_resolved: 0,
        calls_external: 0,
        calls_construction: 0,
        calls_unresolved: 0,
        unresolved_fraction: 0.0,
        per_crate: BTreeMap::new(),
        unresolved_sample: Vec::new(),
    };
    for node_id in 0..nodes.len() {
        let node = &nodes[node_id];
        let pf = &files[node.file];
        let f = &pf.items.fns[node.item];
        let Some((bs, be)) = f.body else {
            continue;
        };
        let crate_stats = report.per_crate.entry(node.crate_name.clone()).or_default();
        crate_stats.fns += 1;
        let mut i = bs + 1;
        while i < be.min(pf.code.len()) {
            let t = &pf.code[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            // Macro invocation: `name !(…)` — not a fn call.
            if pf.code.get(i + 1).is_some_and(|n| n.is_punct("!")) {
                i += 1;
                continue;
            }
            // The call's opening paren, allowing one turbofish `::<…>`.
            let mut j = i + 1;
            if pf.code.get(j).is_some_and(|n| n.is_punct("::"))
                && pf.code.get(j + 1).is_some_and(|n| n.is_punct("<"))
            {
                let mut depth = 0i32;
                let mut k = j + 1;
                while k < be {
                    if pf.code[k].is_punct("<") {
                        depth += 1;
                    } else if pf.code[k].is_punct(">") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                j = k + 1;
            }
            if !pf.code.get(j).is_some_and(|n| n.is_punct("(")) {
                i += 1;
                continue;
            }
            // Skip definitions and control keywords (`let (a, b) = …` and
            // friends put a `(` right after a keyword).
            if matches!(
                t.text.as_str(),
                "fn" | "if"
                    | "while"
                    | "for"
                    | "match"
                    | "return"
                    | "loop"
                    | "let"
                    | "in"
                    | "else"
                    | "move"
            ) {
                i += 1;
                continue;
            }
            let prev = i.checked_sub(1).map(|p| &pf.code[p]);
            let is_method = prev.is_some_and(|p| p.is_punct("."));
            // `fn name(` — a nested fn definition, not a call.
            if prev.is_some_and(|p| p.is_ident("fn")) {
                i += 1;
                continue;
            }
            let resolved: Resolution = if is_method {
                resolve_method(&sym, &t.text)
            } else {
                // Collect the `::` path leading here.
                let mut segs = vec![t.text.clone()];
                let mut b = i;
                while b >= 2
                    && pf.code[b - 1].is_punct("::")
                    && pf.code[b - 2].kind == TokKind::Ident
                {
                    segs.insert(0, pf.code[b - 2].text.clone());
                    b -= 2;
                }
                resolve_path(&sym, &segs, &node.crate_name, f.self_ty.as_deref())
            };
            match resolved {
                Resolution::Workspace(ids) => {
                    report.calls_resolved += 1;
                    crate_stats.calls_resolved += 1;
                    callees[node_id].extend(ids);
                }
                Resolution::External => report.calls_external += 1,
                Resolution::Construction => report.calls_construction += 1,
                Resolution::Unresolved(path) => {
                    report.calls_unresolved += 1;
                    crate_stats.calls_unresolved += 1;
                    if report.unresolved_sample.len() < UNRESOLVED_SAMPLE_CAP {
                        report.unresolved_sample.push(UnresolvedCall {
                            file: pf.rel.clone(),
                            line: t.line,
                            path,
                        });
                    }
                }
            }
            i = j + 1;
        }
    }

    // 3. Dedup edges, build reverse adjacency.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (n, list) in callees.iter_mut().enumerate() {
        list.sort_unstable();
        list.dedup();
        report.edges += list.len();
        for &c in list.iter() {
            callers[c].push(n);
        }
    }
    for list in &mut callers {
        list.sort_unstable();
        list.dedup();
    }
    let contested = report.calls_resolved + report.calls_unresolved;
    if contested > 0 {
        // Precision loss is irrelevant here: this is a reporting ratio.
        report.unresolved_fraction = report.calls_unresolved as f64 / contested as f64;
    }
    CallGraph {
        nodes,
        callees,
        callers,
        owner,
        report,
    }
}

enum Resolution {
    Workspace(Vec<usize>),
    External,
    Construction,
    Unresolved(String),
}

/// `.name(…)` — receiver type unknown, so resolve to every workspace fn
/// with that method name (conservative over-approximation); unmatched
/// names are std/shim methods.
fn resolve_method(sym: &Symbols, name: &str) -> Resolution {
    match sym.methods_any.get(name) {
        Some(ids) => Resolution::Workspace(ids.clone()),
        None => Resolution::External,
    }
}

const EXTERNAL_HEADS: [&str; 12] = [
    "std",
    "core",
    "alloc",
    "serde",
    "serde_json",
    "rand",
    "libc",
    "String",
    "Vec",
    "Box",
    "Option",
    "Result",
];

fn is_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

/// Resolves a (possibly qualified) non-method call path.
fn resolve_path(
    sym: &Symbols,
    segs: &[String],
    caller_crate: &str,
    caller_self_ty: Option<&str>,
) -> Resolution {
    let name = segs.last().map_or("", String::as_str);
    if segs.len() == 1 {
        // Bare call: free fn in the caller's own crate, else anywhere in
        // the workspace (imports are name-stable), else classify.
        if let Some(ids) = sym.free.get(&(caller_crate.to_string(), name.to_string())) {
            return Resolution::Workspace(ids.clone());
        }
        if let Some(ids) = sym.free_any.get(name) {
            return Resolution::Workspace(ids.clone());
        }
        if is_upper(name) {
            // `Some(…)`, `Ok(…)`, `JobId(…)` — tuple/variant construction.
            return Resolution::Construction;
        }
        // Usually a closure or a `use`d std fn; the bucket reports it.
        return Resolution::Unresolved(name.to_string());
    }
    let qual = &segs[segs.len() - 2];
    let head = &segs[0];
    // `Self::helper(…)` — the current impl block's type.
    let qual = if qual == "Self" {
        caller_self_ty.unwrap_or(qual)
    } else {
        qual
    };
    // Assoc fn / method on a workspace type.
    if sym.types.contains_key(qual) || sym.methods.keys().any(|(t, _)| t == qual) {
        if let Some(ids) = sym.methods.get(&(qual.to_string(), name.to_string())) {
            return Resolution::Workspace(ids.clone());
        }
        if is_upper(name) {
            // `TraceEvent::Alert(…)` — enum variant construction.
            return Resolution::Construction;
        }
        if DERIVED_METHODS.contains(&name) {
            return Resolution::External;
        }
        return Resolution::Unresolved(segs.join("::"));
    }
    // Crate-qualified free fn: `bshm_core::cost::job_index(…)`,
    // `crate::pool::place(…)`.
    let target_crate = match head.as_str() {
        "crate" | "self" | "super" => Some(caller_crate),
        h => lib_to_crate(h),
    };
    if let Some(tc) = target_crate {
        if let Some(ids) = sym.free.get(&(tc.to_string(), name.to_string())) {
            return Resolution::Workspace(ids.clone());
        }
        if is_upper(name) {
            return Resolution::Construction;
        }
        return Resolution::Unresolved(segs.join("::"));
    }
    if EXTERNAL_HEADS.contains(&head.as_str()) || !is_upper(qual) {
        // `std::mem::take`, `serde_json::to_string`, module paths of
        // non-workspace crates.
        return Resolution::External;
    }
    // Unknown uppercase qualifier: a std/shim type (`HashMap::new`,
    // `Instant::now`) — external.
    Resolution::External
}

impl CallGraph {
    /// The node whose body contains token index `tok` of file `file`, if
    /// any (bodies never overlap except via nested fns; innermost wins).
    #[must_use]
    pub fn owner_of(&self, file: usize, tok: usize) -> Option<usize> {
        self.owner
            .get(file)?
            .iter()
            .filter(|&&(s, e, _)| s <= tok && tok <= e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|&(_, _, id)| id)
    }

    /// Forward closure (callees) from `seeds`, as a node-indexed flag set.
    #[must_use]
    pub fn reachable_from(&self, seeds: &[usize]) -> Vec<bool> {
        self.closure(seeds, &self.callees)
    }

    /// Reverse closure (callers) from `seeds`, as a node-indexed flag set.
    #[must_use]
    pub fn callers_of(&self, seeds: &[usize]) -> Vec<bool> {
        self.closure(seeds, &self.callers)
    }

    fn closure(&self, seeds: &[usize], adj: &[Vec<usize>]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(n) = queue.pop() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    queue.push(m);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_regions;
    use crate::lexer::tokenize;

    fn parse(rel: &str, src: &str) -> ParsedFile {
        let toks = tokenize(src);
        let mask = test_regions(&toks);
        ParsedFile::build(rel, &toks, &mask)
    }

    fn node(g: &CallGraph, key_suffix: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.key.ends_with(key_suffix))
            .unwrap_or_else(|| panic!("no node ending in {key_suffix}"))
    }

    #[test]
    fn resolves_free_fn_calls_same_crate() {
        let files = vec![parse(
            "crates/core/src/a.rs",
            "pub fn outer() { inner(); }\nfn inner() {}\n",
        )];
        let g = build(&files);
        let o = node(&g, "core::outer");
        let i = node(&g, "core::inner");
        assert_eq!(g.callees[o], vec![i]);
        assert_eq!(g.callers[i], vec![o]);
        assert_eq!(g.report.calls_resolved, 1);
        assert_eq!(g.report.calls_unresolved, 0);
    }

    #[test]
    fn resolves_cross_crate_qualified_calls() {
        let files = vec![
            parse(
                "crates/core/src/cost.rs",
                "pub fn job_index() -> u32 { 1 }\n",
            ),
            parse(
                "crates/algos/src/x.rs",
                "pub fn run() { let _ = bshm_core::cost::job_index(); }\n",
            ),
        ];
        let g = build(&files);
        let r = node(&g, "algos::run");
        let j = node(&g, "core::job_index");
        assert_eq!(g.callees[r], vec![j]);
    }

    #[test]
    fn method_calls_over_approximate() {
        let files = vec![
            parse(
                "crates/sim/src/pool.rs",
                "pub struct Pool;\nimpl Pool { pub fn place(&mut self) {} }\n",
            ),
            parse(
                "crates/algos/src/y.rs",
                "pub fn go(p: &mut Pool) { p.place(); }\n",
            ),
        ];
        let g = build(&files);
        let go = node(&g, "algos::go");
        let place = node(&g, "Pool::place");
        assert_eq!(g.callees[go], vec![place]);
        // Std methods do not pollute the unresolved bucket.
        let files = vec![parse(
            "crates/core/src/z.rs",
            "pub fn f(v: &mut Vec<u32>) { v.push(1); v.sort(); }\n",
        )];
        let g = build(&files);
        assert_eq!(g.report.calls_unresolved, 0);
        assert_eq!(g.report.calls_external, 2);
    }

    #[test]
    fn constructions_and_macros_are_not_calls() {
        let files = vec![parse(
            "crates/core/src/w.rs",
            "pub enum E { V(u32) }\npub struct T(u32);\npub fn f() -> (E, T, Option<u32>) { let v = vec![1]; let _ = v; (E::V(1), T(2), Some(3)) }\n",
        )];
        let g = build(&files);
        assert_eq!(g.report.calls_unresolved, 0, "{:?}", g.report);
        assert_eq!(g.report.calls_construction, 3);
        assert_eq!(g.report.calls_resolved, 0);
    }

    #[test]
    fn self_calls_resolve_within_impl() {
        let files = vec![parse(
            "crates/obs/src/r.rs",
            "pub struct R;\nimpl R { fn helper() {} pub fn run() { Self::helper(); } }\n",
        )];
        let g = build(&files);
        let run = node(&g, "R::run");
        let h = node(&g, "R::helper");
        assert_eq!(g.callees[run], vec![h]);
    }

    #[test]
    fn unresolved_bucket_reports_closure_calls() {
        let files = vec![parse(
            "crates/core/src/c.rs",
            "pub fn f() { let g = |x: u32| x + 1; let _ = g(1); }\n",
        )];
        let g = build(&files);
        assert_eq!(g.report.calls_unresolved, 1);
        assert_eq!(g.report.unresolved_sample.len(), 1);
        assert_eq!(g.report.unresolved_sample[0].path, "g");
    }

    #[test]
    fn owner_of_maps_tokens_to_fns() {
        let files = vec![parse(
            "crates/core/src/o.rs",
            "pub fn a() { let x = 1; }\npub fn b() { let y = 2; }\n",
        )];
        let g = build(&files);
        let pf = &files[0];
        let y_idx = pf.code.iter().position(|t| t.is_ident("y")).unwrap();
        let owner = g.owner_of(0, y_idx).unwrap();
        assert!(g.nodes[owner].key.ends_with("core::b"));
    }

    #[test]
    fn closures_reach_transitively() {
        let files = vec![parse(
            "crates/core/src/t.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n",
        )];
        let g = build(&files);
        let a = node(&g, "core::a");
        let c = node(&g, "core::c");
        let lonely = node(&g, "core::lonely");
        let fwd = g.reachable_from(&[a]);
        assert!(fwd[c] && !fwd[lonely]);
        let back = g.callers_of(&[c]);
        assert!(back[a] && !back[lonely]);
    }
}
