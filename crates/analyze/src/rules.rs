//! The lint rules, tuned to this codebase's invariants.
//!
//! Each rule walks the token stream of one file (comments stripped, test
//! regions masked) and emits raw findings; pragma filtering happens in the
//! engine afterwards. See `DESIGN.md` § Static analysis for the rationale
//! behind each rule.

use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// A rule's identity and scope, used by `--list-rules` and the docs test.
pub struct RuleInfo {
    /// Slug used in diagnostics and pragmas.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every lint rule the engine runs (drift auditors are separate).
/// `taint-path` and `concurrency-audit` are whole-workspace rules
/// implemented in `taint.rs` over the call graph; they are listed here so
/// `--list-rules`, pragmas, and the committed manifest see one registry.
pub const RULES: [RuleInfo; 15] = [
    RuleInfo {
        name: "no-panic",
        summary: "no unwrap/expect/panic!/unreachable!/todo! in non-test code of library crates (core, algos, sim, obs, faults)",
    },
    RuleInfo {
        name: "float-eq",
        summary: "no ==/!= on expressions with float operands (costs and rates compare exactly as integers, floats need epsilons)",
    },
    RuleInfo {
        name: "lossy-cast",
        summary: "no raw `as` casts to integer types in library crates; use From/try_from or bshm_core::convert helpers",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "no Instant::now/SystemTime::now outside obs::span (timing goes through the span/clock layer; for machine-independent profiles prefer the deterministic OpCounter columns from `bshm xray`)",
    },
    RuleInfo {
        name: "no-print",
        summary: "no println!/eprintln!/print!/eprint!/dbg! in library crates (output goes through Probe/Recorder or returned values)",
    },
    RuleInfo {
        name: "must-use-accessor",
        summary: "pub fns returning a value in bshm-core's schedule.rs/cost.rs must be #[must_use] (dropped Schedule/cost results hide accounting bugs)",
    },
    RuleInfo {
        name: "no-raw-trace-write",
        summary: "no File::create/fs::write in obs/sim outside obs::sink; trace-shaped output goes through the crash-safe writer (TraceWriter/atomic_write)",
    },
    RuleInfo {
        name: "no-raw-metric",
        summary: "no direct assignment to Metrics counter/gauge fields in obs/sim outside the recorder fold and the labeled registry; mutate through Recorder::record or Registry mutators",
    },
    RuleInfo {
        name: "no-untyped-reject",
        summary: "candidate rejections in scheduler code must carry a typed RejectReason — no string/char literals as reject/rejected/noted probe arguments (stringly-typed reasons break the labeled ops families)",
    },
    RuleInfo {
        name: "no-unbounded-buffer",
        summary: "ring/queue types (VecDeque) in obs must declare a capacity — no VecDeque::new(), and the file must name a `capacity`/`with_capacity` bound (the health plane's buffers stay O(1) by design)",
    },
    RuleInfo {
        name: "unordered-iter",
        summary: "no iteration over HashMap/HashSet values in library crates — iteration order varies per process and per run; use BTreeMap/BTreeSet so replay and sharded solving stay deterministic",
    },
    RuleInfo {
        name: "shared-mutable-static",
        summary: "no `static mut` or thread_local! state in library crates — shared mutable globals race under sharded solving and make runs depend on thread interleaving",
    },
    RuleInfo {
        name: "taint-path",
        summary: "no call-graph path from a nondeterminism source (wall-clock, unseeded RNG, unordered iteration, env/thread-id reads, pointer addresses) to a determinism sink (TraceEvent emission, bench baseline writers, checkpoint digests, SLO alert stamps)",
    },
    RuleInfo {
        name: "concurrency-audit",
        summary: "no unordered iteration or interior-mutability state in fns reachable from the solver entry points — the pre-flight gate for sharded solving (ROADMAP item 1)",
    },
    RuleInfo {
        name: "no-unbounded-channel",
        summary: "queue/ring construction in the serve crate must state a capacity — no VecDeque::new() or unbounded mpsc::channel(); admission answers overflow with typed Overload backpressure, never silent growth",
    },
];

/// Integer-typed cast targets the `lossy-cast` rule polices.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Runs every applicable rule over one file's code tokens.
///
/// `toks` must be comment-free (see [`crate::diag::code_only`]);
/// `in_test[i]` masks tokens inside `#[cfg(test)]`/`#[test]` regions.
#[must_use]
pub fn check_file(ctx: &FileContext, toks: &[Tok], in_test: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.all_test {
        return out;
    }
    let live = |i: usize| !in_test.get(i).copied().unwrap_or(false);
    if ctx.strict_library {
        out.extend(no_panic(ctx, toks, &live));
        out.extend(no_print(ctx, toks, &live));
        out.extend(lossy_cast(ctx, toks, &live));
        out.extend(unordered_iter(ctx, toks, &live));
        out.extend(shared_mutable_static(ctx, toks, &live));
    }
    out.extend(float_eq(ctx, toks, &live));
    if !ctx.path.ends_with("obs/src/span.rs") {
        out.extend(wall_clock(ctx, toks, &live));
    }
    if ctx.path.ends_with("core/src/schedule.rs") || ctx.path.ends_with("core/src/cost.rs") {
        out.extend(must_use_accessor(ctx, toks, &live));
    }
    if matches!(ctx.crate_name.as_str(), "obs" | "sim") && !ctx.path.ends_with("obs/src/sink.rs") {
        out.extend(no_raw_trace_write(ctx, toks, &live));
    }
    if matches!(ctx.crate_name.as_str(), "obs" | "sim")
        && !ctx.path.ends_with("obs/src/recorder.rs")
        && !ctx.path.ends_with("obs/src/registry.rs")
        && !ctx.path.ends_with("obs/src/window.rs")
    {
        out.extend(no_raw_metric(ctx, toks, &live));
    }
    if ctx.strict_library || ctx.crate_name == "chart" {
        out.extend(no_untyped_reject(ctx, toks, &live));
    }
    if ctx.crate_name == "obs" {
        out.extend(no_unbounded_buffer(ctx, toks, &live));
    }
    if ctx.crate_name == "serve" {
        out.extend(no_unbounded_channel(ctx, toks, &live));
    }
    out
}

/// `no-unbounded-buffer`: ring/queue types in obs without a declared bound.
///
/// The live health plane holds long-running state (flight-recorder ring,
/// rolling-window history) inside the trace hot path, so every `VecDeque`
/// in the obs crate must be capacity-bounded: `VecDeque::new()` is always
/// flagged, and a file that mentions `VecDeque` at all must also name a
/// `capacity`/`with_capacity` identifier somewhere, proving the bound is
/// part of the type's contract rather than an accident of today's usage.
fn no_unbounded_buffer(
    ctx: &FileContext,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let declares_bound = toks.iter().enumerate().any(|(i, t)| {
        live(i)
            && t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "capacity" | "with_capacity")
    });
    let mut first_use: Option<&Tok> = None;
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || !t.is_ident("VecDeque") {
            continue;
        }
        if first_use.is_none() {
            first_use = Some(t);
        }
        // `VecDeque::new()` grows without limit no matter what else the
        // file declares.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("new"))
        {
            out.push(Diagnostic::error(
                "no-unbounded-buffer",
                &ctx.path,
                t.line,
                "VecDeque::new() in obs is an unbounded buffer; construct with with_capacity and evict at the bound, or justify with `// bshm-allow(no-unbounded-buffer): reason`".to_string(),
            ));
        }
    }
    if let Some(t) = first_use {
        if !declares_bound {
            out.push(Diagnostic::error(
                "no-unbounded-buffer",
                &ctx.path,
                t.line,
                "VecDeque used in obs without a declared capacity anywhere in the file; ring/queue state in the health plane must be bounded, or justify with `// bshm-allow(no-unbounded-buffer): reason`".to_string(),
            ));
        }
    }
    out
}

/// `no-unbounded-channel`: queue construction in the serve crate without
/// a stated capacity.
///
/// The resident service's entire backpressure story rests on every queue
/// being bounded: a full queue answers with a typed `Overload` carrying a
/// deterministic retry-after, never silent growth. So in `crates/serve`
/// the rule flags `VecDeque::new()` and the unbounded `mpsc::channel()`
/// constructor (`sync_channel(cap)` is the bounded std form), and any
/// file touching `VecDeque` or `channel` must name a
/// `capacity`/`with_capacity`/`sync_channel` bound somewhere — the bound
/// is part of the contract, not an accident of today's usage.
fn no_unbounded_channel(
    ctx: &FileContext,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let declares_bound = toks.iter().enumerate().any(|(i, t)| {
        live(i)
            && t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "capacity" | "with_capacity" | "sync_channel"
            )
    });
    let mut first_use: Option<&Tok> = None;
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("VecDeque") {
            if first_use.is_none() {
                first_use = Some(t);
            }
            if toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("new"))
            {
                out.push(Diagnostic::error(
                    "no-unbounded-channel",
                    &ctx.path,
                    t.line,
                    "VecDeque::new() in serve is an unbounded queue; construct with with_capacity and reject overflow with a typed Overload, or justify with `// bshm-allow(no-unbounded-channel): reason`".to_string(),
                ));
            }
        }
        // `mpsc::channel()` is the unbounded constructor; the bounded
        // std form is `mpsc::sync_channel(cap)`.
        if t.is_ident("mpsc")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("channel"))
        {
            out.push(Diagnostic::error(
                "no-unbounded-channel",
                &ctx.path,
                t.line,
                "mpsc::channel() in serve is unbounded; use mpsc::sync_channel(capacity) so senders block/fail at the bound, or justify with `// bshm-allow(no-unbounded-channel): reason`".to_string(),
            ));
        }
    }
    if let Some(t) = first_use {
        if !declares_bound {
            out.push(Diagnostic::error(
                "no-unbounded-channel",
                &ctx.path,
                t.line,
                "VecDeque used in serve without a declared capacity anywhere in the file; admission/queue state in the service must be bounded, or justify with `// bshm-allow(no-unbounded-channel): reason`".to_string(),
            ));
        }
    }
    out
}

/// `no-untyped-reject`: rejection probes fed a literal instead of a
/// [`RejectReason`].
///
/// The decision x-ray's labeled families (`bshm_ops_rejected_total{reason=…}`)
/// iterate `RejectReason::ALL`; a stringly-typed reason would silently
/// fall outside every family. The probe API only takes the enum, so this
/// catches the drive-by shortcut before it grows a `&str` overload.
fn no_untyped_reject(
    ctx: &FileContext,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i)
            || t.kind != TokKind::Ident
            || !matches!(t.text.as_str(), "reject" | "rejected" | "noted")
        {
            continue;
        }
        let prev_is_dot = i > 0 && toks[i - 1].is_punct(".");
        if !prev_is_dot || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // Scan the argument list for string/char literals.
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(a) = toks.get(j) {
            if a.is_punct("(") {
                depth += 1;
            } else if a.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if matches!(a.kind, TokKind::Str | TokKind::Char) {
                out.push(Diagnostic::error(
                    "no-untyped-reject",
                    &ctx.path,
                    a.line,
                    format!(
                        "literal {} passed to `.{}(…)`; rejection reasons are typed — use a RejectReason variant so the labeled ops families count it, or justify with `// bshm-allow(no-untyped-reject): reason`",
                        a.text, t.text
                    ),
                ));
                break;
            }
            j += 1;
        }
    }
    out
}

/// Metric field names of `bshm_obs::Metrics` whose mutation the
/// `no-raw-metric` rule polices. Histogram/timeline vectors are appended
/// via methods and are not assignable targets, so they are omitted.
const METRIC_FIELDS: [&str; 28] = [
    "arrivals",
    "departures",
    "placements",
    "opened_placements",
    "reused_placements",
    "opens",
    "closes",
    "traced_cost",
    "cost_by_type",
    "open_peak_by_type",
    "utilization_sum",
    "decision_ns_sum",
    "crashes",
    "displaced_jobs",
    "recovered_jobs",
    "dropped_jobs",
    "recovery_ns_sum",
    "gap_samples",
    "last_lower_bound",
    "last_attributed_cost",
    "max_gap_ratio",
    "ops",
    "ops_hist",
    "ops_sum",
    "alerts",
    "alerts_by_reason",
    "tenant_transitions",
    "degradations",
];

/// `no-raw-metric`: direct mutation of `Metrics` counter/gauge fields.
///
/// Every metric mutation in obs/sim must flow through the recorder's
/// event fold (`Metrics::apply`, in `obs/src/recorder.rs`), the labeled
/// registry's typed mutators (`obs/src/registry.rs`), or the rolling-window
/// fold (`obs/src/window.rs`, whose per-window counters deliberately share
/// the `Metrics` field names) — all exempted by the caller — so the
/// Prometheus exposition, the drift auditors, and the replay fold can
/// never disagree about a counter's provenance.
fn no_raw_metric(ctx: &FileContext, toks: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident || !METRIC_FIELDS.contains(&t.text.as_str()) {
            continue;
        }
        // `<expr> . field =` or `<expr> . field op=` — a field write, not
        // a read, a method call, or a struct-literal/pattern position.
        // `+=` is not a fused lexer token, so a compound assignment shows
        // up as an operator punct followed by a bare `=` (while `==`, `=>`
        // ARE fused, so comparisons never look like writes).
        let prev_is_dot = i > 0 && toks[i - 1].is_punct(".");
        let compound =
            |n: &Tok| ["+", "-", "*", "/", "%", "|", "&", "^"].contains(&n.text.as_str());
        let next_mutates = toks.get(i + 1).is_some_and(|n| {
            n.is_punct("=")
                || (n.kind == TokKind::Punct
                    && compound(n)
                    && toks.get(i + 2).is_some_and(|m| m.is_punct("=")))
        });
        if prev_is_dot && next_mutates {
            out.push(Diagnostic::error(
                "no-raw-metric",
                &ctx.path,
                t.line,
                format!(
                    "raw write to metric field `{}` outside the recorder fold/registry; route it through Recorder::record or a Registry mutator, or justify with `// bshm-allow(no-raw-metric): reason`",
                    t.text
                ),
            ));
        }
    }
    out
}

/// `no-raw-trace-write`: direct file writes in the trace-producing crates.
///
/// Everything trace-shaped that obs or sim persists must go through
/// `bshm_obs::sink` (`TraceWriter` for streams, `atomic_write` for
/// snapshots) so a kill mid-write can never tear more than the final
/// line. `obs/src/sink.rs` itself — the one sanctioned call site — is
/// exempted by the caller.
fn no_raw_trace_write(
    ctx: &FileContext,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        let calls = |head: &str, method: &str| {
            t.is_ident(head)
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident(method))
        };
        if calls("File", "create") || calls("fs", "write") {
            let what = format!("{}::{}", t.text, toks[i + 2].text);
            out.push(Diagnostic::error(
                "no-raw-trace-write",
                &ctx.path,
                t.line,
                format!(
                    "raw {what} outside obs::sink; use TraceWriter/atomic_write so a kill cannot tear the output, or justify with `// bshm-allow(no-raw-trace-write): reason`"
                ),
            ));
        }
    }
    out
}

/// One unordered-iteration site found by [`unordered_iter_sites`].
pub struct UnorderedIterSite {
    /// Source line of the receiver identifier.
    pub line: u32,
    /// Token index of the receiver identifier in the scanned stream.
    pub idx: usize,
    /// Human-readable form, e.g. `records.values()`.
    pub what: String,
}

/// Methods whose call on a `HashMap`/`HashSet` observes iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Finds iteration over `HashMap`/`HashSet`-typed locals, params, and
/// fields in one file. Shared between the per-file `unordered-iter` rule
/// and the taint engine's `UnorderedIter` source detector.
///
/// Heuristic, by design: a name is *hash-typed* when the file declares it
/// as `name: …HashMap/HashSet…` (param, field, or annotated let — the type
/// window stops at a depth-0 `, ; ) = ( {`) or binds it via
/// `name = HashMap::…`/`HashSet::…`. A *site* is an order-observing method
/// call or a `for … in` loop whose receiver root is that name — bare, or
/// behind exactly `self.` — so `machine.jobs.iter()` (a `Vec` field whose
/// name collides with a hash-typed param elsewhere) stays clean. Known
/// miss: iteration through an intermediate local (`let g = m.lock(); …
/// g.drain()`), which renames the collection; conversions to BTreeMap at
/// the declaration remove the name from the hash set and the miss with it.
#[must_use]
pub fn unordered_iter_sites(toks: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<UnorderedIterSite> {
    let mut hash_names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        if toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let mut angle = 0i32;
            for w in toks.iter().take((i + 14).min(toks.len())).skip(i + 2) {
                if w.is_punct("<") {
                    angle += 1;
                } else if w.is_punct(">") {
                    angle -= 1;
                } else if angle == 0
                    && w.kind == TokKind::Punct
                    && matches!(w.text.as_str(), "," | ";" | ")" | "=" | "(" | "{")
                {
                    break;
                }
                if w.is_ident("HashMap") || w.is_ident("HashSet") {
                    hash_names.insert(&t.text);
                    break;
                }
            }
        }
        if toks.get(i + 1).is_some_and(|n| n.is_punct("="))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_ident("HashMap") || n.is_ident("HashSet"))
        {
            hash_names.insert(&t.text);
        }
    }
    if hash_names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident || !hash_names.contains(t.text.as_str()) {
            continue;
        }
        // Receiver root only: bare `name`, or exactly `self . name`.
        if i > 0 && toks[i - 1].is_punct(".") && !(i >= 2 && toks[i - 2].is_ident("self")) {
            continue;
        }
        // `name . method (` with an order-observing method.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            out.push(UnorderedIterSite {
                line: t.line,
                idx: i,
                what: format!("{}.{}()", t.text, toks[i + 2].text),
            });
            continue;
        }
        // `for x in [& [mut]] [self .] name {` — direct IntoIterator use.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
            let mut b = i;
            if b >= 2 && toks[b - 1].is_punct(".") && toks[b - 2].is_ident("self") {
                b -= 2;
            }
            if b >= 1 && toks[b - 1].is_ident("mut") {
                b -= 1;
            }
            if b >= 1 && toks[b - 1].is_punct("&") {
                b -= 1;
            }
            if b >= 1 && toks[b - 1].is_ident("in") {
                out.push(UnorderedIterSite {
                    line: t.line,
                    idx: i,
                    what: format!("for … in {}", t.text),
                });
            }
        }
    }
    out
}

/// `unordered-iter`: iteration over hash-ordered collections in library
/// code. Order differs between processes (SipHash keys are randomized) and
/// between runs, so anything fold-ordered downstream — replay, digests,
/// report rows — silently diverges.
fn unordered_iter(
    ctx: &FileContext,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
) -> Vec<Diagnostic> {
    unordered_iter_sites(toks, live)
        .into_iter()
        .map(|s| {
            Diagnostic::error(
                "unordered-iter",
                &ctx.path,
                s.line,
                format!(
                    "iteration over unordered collection ({}); HashMap/HashSet order varies per process and breaks replay — switch to BTreeMap/BTreeSet, or justify with `// bshm-allow(unordered-iter): reason`",
                    s.what
                ),
            )
        })
        .collect()
}

/// `shared-mutable-static`: `static mut` / `thread_local!` globals in
/// library code. Both make results depend on thread interleaving the
/// moment solving is sharded (ROADMAP item 1); `Sync` statics behind
/// `Mutex`/`OnceLock` are fine and not matched.
fn shared_mutable_static(
    ctx: &FileContext,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("static") && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            out.push(Diagnostic::error(
                "shared-mutable-static",
                &ctx.path,
                t.line,
                "`static mut` in a library crate; unsynchronized global state races under sharded solving — use a Sync wrapper (Mutex/OnceLock/atomic) or pass state explicitly, or justify with `// bshm-allow(shared-mutable-static): reason`".to_string(),
            ));
        }
        if t.is_ident("thread_local") && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            out.push(Diagnostic::error(
                "shared-mutable-static",
                &ctx.path,
                t.line,
                "thread_local! in a library crate; per-thread state makes results depend on which worker runs the code — pass state explicitly, or justify with `// bshm-allow(shared-mutable-static): reason`".to_string(),
            ));
        }
    }
    out
}

/// `no-panic`: panicking constructs in shipping library code.
fn no_panic(ctx: &FileContext, toks: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(s));
        let prev_is_dot = i > 0 && toks[i - 1].is_punct(".");
        let finding = match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is("(") => {
                Some(format!(".{}() panics on the error path", t.text))
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => {
                Some(format!("{}! aborts cost accounting mid-run", t.text))
            }
            _ => None,
        };
        if let Some(what) = finding {
            out.push(Diagnostic::error(
                "no-panic",
                &ctx.path,
                t.line,
                format!(
                    "{what}; return a Result or justify with `// bshm-allow(no-panic): reason`"
                ),
            ));
        }
    }
    out
}

/// `no-print`: direct console output from library crates.
fn no_print(ctx: &FileContext, toks: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if is_macro
            && matches!(
                t.text.as_str(),
                "println" | "print" | "eprintln" | "eprint" | "dbg"
            )
        {
            out.push(Diagnostic::error(
                "no-print",
                &ctx.path,
                t.line,
                format!(
                    "{}! in a library crate; route output through Probe/Recorder or return it",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Collects the comparison operand window on one side of position `op`,
/// walking `dir` (+1/-1), skipping balanced bracket groups but including
/// their contents, and stopping at expression boundaries.
fn operand_window(toks: &[Tok], op: usize, dir: i64) -> Vec<usize> {
    const BOUNDARY: [&str; 9] = [";", ",", "{", "}", "&&", "||", "=", "==", "!="];
    let mut idxs = Vec::new();
    let mut depth = 0i32;
    let mut i = op as i64 + dir;
    let (open, close) = if dir < 0 { (")", "(") } else { ("(", ")") };
    while i >= 0 && (i as usize) < toks.len() && idxs.len() < 48 {
        let t = &toks[i as usize];
        if t.is_punct(open) || t.is_punct("]") && dir < 0 || t.is_punct("[") && dir > 0 {
            depth += 1;
        } else if t.is_punct(close) || t.is_punct("[") && dir < 0 || t.is_punct("]") && dir > 0 {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0
            && (BOUNDARY.contains(&t.text.as_str()) && t.kind == TokKind::Punct
                || t.is_ident("if")
                || t.is_ident("return")
                || t.is_ident("let")
                || t.is_ident("while"))
        {
            break;
        }
        idxs.push(i as usize);
        i += dir;
    }
    idxs
}

/// `float-eq`: exact equality on float-typed expressions.
///
/// Heuristic: a `==`/`!=` is flagged when either operand window contains a
/// float literal, an `f32`/`f64` type token, or a cast to float. Windows
/// are bracket-balanced so `if i == 0 { 0.0 }` (float only in the body)
/// stays clean while `(x as f64) == y` is caught.
fn float_eq(ctx: &FileContext, toks: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let floaty = |idxs: &[usize]| {
            idxs.iter().any(|&j| {
                toks[j].kind == TokKind::Float || toks[j].is_ident("f64") || toks[j].is_ident("f32")
            })
        };
        if floaty(&operand_window(toks, i, -1)) || floaty(&operand_window(toks, i, 1)) {
            out.push(Diagnostic::error(
                "float-eq",
                &ctx.path,
                t.line,
                format!(
                    "`{}` on a float expression; compare integer costs exactly or use an epsilon helper",
                    t.text
                ),
            ));
        }
    }
    out
}

/// `lossy-cast`: raw `as` casts to integer types in library code.
///
/// Casts of integer literals (`7 as u64`) are compile-time checkable and
/// exempt; everything else must go through `From`, `try_from`, or the
/// audited helpers in `bshm_core::convert`.
fn lossy_cast(ctx: &FileContext, toks: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
            continue;
        }
        if i > 0 && toks[i - 1].kind == TokKind::Int {
            continue;
        }
        out.push(Diagnostic::error(
            "lossy-cast",
            &ctx.path,
            t.line,
            format!(
                "raw `as {}` cast; use From/try_from or bshm_core::convert, or justify with `// bshm-allow(lossy-cast): reason`",
                target.text
            ),
        ));
    }
    out
}

/// `wall-clock`: direct clock reads outside the span layer.
fn wall_clock(ctx: &FileContext, toks: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        if (t.text == "Instant" || t.text == "SystemTime")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            out.push(Diagnostic::error(
                "wall-clock",
                &ctx.path,
                t.line,
                format!(
                    "{}::now() outside obs::span; use bshm_obs::span::now() so timing stays mockable and replay-safe",
                    t.text
                ),
            ));
        }
    }
    out
}

/// `must-use-accessor`: value-returning `pub fn`s in bshm-core's schedule
/// and cost modules must carry `#[must_use]`.
fn must_use_accessor(
    ctx: &FileContext,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !live(i) || !t.is_ident("pub") {
            continue;
        }
        // `pub` [`(crate)` etc.] `fn` name
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct("(")) {
            while j < toks.len() && !toks[j].is_punct(")") {
                j += 1;
            }
            j += 1;
        }
        if !toks.get(j).is_some_and(|n| n.is_ident("fn")) {
            continue;
        }
        let Some(name) = toks.get(j + 1) else {
            continue;
        };
        // Does the signature have a return type? Scan to the body `{` (or
        // `;` for trait decls) at angle/paren depth 0, looking for `->`.
        let mut k = j + 2;
        let mut paren = 0i32;
        let mut returns_value = false;
        while k < toks.len() {
            let tk = &toks[k];
            if tk.is_punct("(") || tk.is_punct("[") {
                paren += 1;
            } else if tk.is_punct(")") || tk.is_punct("]") {
                paren -= 1;
            } else if paren == 0 && tk.is_punct("->") {
                returns_value = true;
            } else if paren == 0 && (tk.is_punct("{") || tk.is_punct(";")) {
                break;
            }
            k += 1;
        }
        if !returns_value {
            continue;
        }
        // Look back for `#[must_use]` among the attributes directly above:
        // walk preceding tokens while they form `# [ … ]` groups.
        let mut has_must_use = false;
        let mut b = i;
        while b >= 1 {
            if !toks[b - 1].is_punct("]") {
                break;
            }
            let mut d = 0i32;
            let mut s = b - 1;
            loop {
                if toks[s].is_punct("]") {
                    d += 1;
                } else if toks[s].is_punct("[") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if s == 0 {
                    break;
                }
                s -= 1;
            }
            let attr_has = toks[s..b].iter().any(|a| a.is_ident("must_use"));
            has_must_use |= attr_has;
            if s == 0 || !toks[s - 1].is_punct("#") {
                break;
            }
            b = s - 1;
        }
        if !has_must_use {
            out.push(Diagnostic::error(
                "must-use-accessor",
                &ctx.path,
                t.line,
                format!(
                    "pub fn {} returns a value but is not #[must_use]; a dropped Schedule/cost result hides accounting bugs",
                    name.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_regions;
    use crate::diag::code_only;
    use crate::lexer::tokenize;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileContext::classify(path);
        let toks = tokenize(src);
        let in_test_all = test_regions(&toks);
        let code: Vec<_> = toks
            .iter()
            .zip(&in_test_all)
            .filter(|(t, _)| !t.is_comment())
            .collect();
        let code_toks: Vec<_> = code.iter().map(|(t, _)| (*t).clone()).collect();
        let flags: Vec<bool> = code.iter().map(|(_, f)| **f).collect();
        let _ = code_only(&toks);
        check_file(&ctx, &code_toks, &flags)
    }

    const LIB: &str = "crates/core/src/x.rs";

    #[test]
    fn no_panic_positive() {
        for src in [
            "fn f() { x.unwrap(); }",
            "fn f() { x.expect(\"msg\"); }",
            "fn f() { panic!(\"boom\"); }",
            "fn f() { unreachable!(); }",
            "fn f() { todo!(); }",
        ] {
            let d = check(LIB, src);
            assert!(d.iter().any(|d| d.rule == "no-panic"), "{src}: {d:?}");
        }
    }

    #[test]
    fn no_panic_negative() {
        for src in [
            "fn f() { x.unwrap_or(0); }",
            "fn f() { x.unwrap_or_default(); }",
            "fn f() { x.unwrap_or_else(|| 0); }",
            "fn f() -> Result<(), E> { x? }",
            // Strings and comments don't count.
            "fn f() { let s = \"don't panic!()\"; } // unwrap() here is a comment",
        ] {
            assert!(check(LIB, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn no_panic_skips_tests_and_non_library() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }";
        assert!(check(LIB, src).is_empty());
        assert!(check("crates/cli/src/x.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(check("crates/core/tests/t.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn float_eq_positive() {
        for src in [
            "fn f() { if a == 0.0 { g(); } }",
            "fn f() { if (x as f64) == y { g(); } }",
            "fn f() { assert_cmp(a != 1e-9); }",
            "fn f() { if cost_ratio == other as f64 { g(); } }",
        ] {
            let d = check("crates/bench/src/x.rs", src);
            assert!(d.iter().any(|d| d.rule == "float-eq"), "{src}: {d:?}");
        }
    }

    #[test]
    fn float_eq_negative() {
        for src in [
            "fn f() { if i == 0 { return 0.0; } }", // float only in the body
            "fn f() { let lo = if i == 0 { 0.0 } else { x as f64 }; }",
            "fn f() { if cost == other_cost { g(); } }", // integer costs
            "fn f() { if a <= 4.0 + 1e-9 { g(); } }",    // ordering, not equality
        ] {
            let d = check("crates/bench/src/x.rs", src);
            assert!(d.is_empty(), "{src}: {d:?}");
        }
    }

    #[test]
    fn lossy_cast_positive() {
        for src in [
            "fn f() { let x = n as u32; }",
            "fn f() { let x = len() as usize; }",
            "fn f() { let x = (a + b) as u64; }",
        ] {
            let d = check(LIB, src);
            assert!(d.iter().any(|d| d.rule == "lossy-cast"), "{src}: {d:?}");
        }
    }

    #[test]
    fn lossy_cast_negative() {
        for src in [
            "fn f() { let x = 7 as u64; }", // literal: compile-time checkable
            "fn f() { let x = u64::from(n); }",
            "fn f() { let x = u32::try_from(n)?; }",
            "fn f() { let x = n as f64; }", // float cast: not this rule
            "fn f() { let t = x as TimePoint; }", // alias target: not an int keyword
        ] {
            let d = check(LIB, src);
            assert!(d.iter().all(|d| d.rule != "lossy-cast"), "{src}: {d:?}");
        }
        // Outside strict library crates the rule is off.
        assert!(check("crates/bench/src/x.rs", "fn f() { let x = n as u32; }").is_empty());
    }

    #[test]
    fn wall_clock_positive_and_span_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        let d = check("crates/sim/src/driver.rs", src);
        assert!(d.iter().any(|d| d.rule == "wall-clock"), "{d:?}");
        let d = check(
            "crates/bench/src/x.rs",
            "fn f() { let t = std::time::SystemTime::now(); }",
        );
        assert!(d.iter().any(|d| d.rule == "wall-clock"), "{d:?}");
        assert!(check("crates/obs/src/span.rs", src).is_empty());
    }

    #[test]
    fn no_print_rule() {
        let d = check(LIB, "fn f() { println!(\"x\"); }");
        assert!(d.iter().any(|d| d.rule == "no-print"));
        let d = check(LIB, "fn f() { dbg!(x); }");
        assert!(d.iter().any(|d| d.rule == "no-print"));
        // CLI crates may print.
        assert!(check("crates/cli/src/x.rs", "fn f() { println!(\"x\"); }").is_empty());
        // writeln! to a writer is fine anywhere.
        assert!(check(LIB, "fn f(w: &mut W) { writeln!(w, \"x\"); }").is_empty());
    }

    #[test]
    fn no_raw_trace_write_rule() {
        let src = "fn f(p: &Path) { let _ = File::create(p); }";
        for path in ["crates/obs/src/recorder.rs", "crates/sim/src/driver.rs"] {
            let d = check(path, src);
            assert!(
                d.iter().any(|d| d.rule == "no-raw-trace-write"),
                "{path}: {d:?}"
            );
        }
        let d = check(
            "crates/obs/src/recorder.rs",
            "fn f() { std::fs::write(\"t.jsonl\", text); }",
        );
        assert!(d.iter().any(|d| d.rule == "no-raw-trace-write"), "{d:?}");
        // The sink module itself is the sanctioned call site.
        assert!(check("crates/obs/src/sink.rs", src).is_empty());
        // Other crates (cli writes schedules, bench writes reports) are
        // out of scope; so are test regions.
        assert!(check("crates/cli/src/commands.rs", src).is_empty());
        assert!(check("crates/faults/src/runner.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f() { let _ = File::create(p); } }";
        assert!(check("crates/obs/src/recorder.rs", test_src).is_empty());
        // Reading is fine; only the raw write constructors are flagged.
        let d = check(
            "crates/obs/src/replay.rs",
            "fn f(p: &str) { let _ = std::fs::read_to_string(p); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn no_raw_metric_rule() {
        // Writes to Metrics fields are flagged in obs/sim…
        for src in [
            "fn f(m: &mut Metrics) { m.gap_samples += 1; }",
            "fn f(m: &mut Metrics) { m.last_lower_bound = lb; }",
            "fn f(m: &mut Metrics) { m.traced_cost -= x; }",
        ] {
            for path in ["crates/obs/src/replay.rs", "crates/sim/src/driver.rs"] {
                let d = check(path, src);
                assert!(
                    d.iter().any(|d| d.rule == "no-raw-metric"),
                    "{path} {src}: {d:?}"
                );
            }
        }
        // …but the recorder fold and the registry are the sanctioned sites.
        let src = "fn f(m: &mut Metrics) { m.gap_samples += 1; }";
        assert!(check("crates/obs/src/recorder.rs", src).is_empty());
        assert!(check("crates/obs/src/registry.rs", src).is_empty());
        // Other crates (faults' own report counters, cli, bench) are out
        // of scope; so are test regions.
        assert!(check("crates/faults/src/runner.rs", src).is_empty());
        assert!(check("crates/cli/src/commands.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f() { m.gap_samples += 1; } }";
        assert!(check("crates/obs/src/replay.rs", test_src).is_empty());
        // Reads, comparisons, method calls, and struct literals are clean.
        for src in [
            "fn f(m: &Metrics) -> u64 { m.gap_samples }",
            "fn f(m: &Metrics) { if m.gap_samples == 3 { g(); } }",
            "fn f(m: &Metrics) { if m.opens <= 4 { g(); } }",
            "fn f(m: &Metrics) { assert(m.gap_samples >= 1); }",
            "fn f() -> M { M { gap_samples: 1 } }",
            "fn f(v: &mut Vec<u64>) { v.placements(); }",
        ] {
            let d = check("crates/obs/src/replay.rs", src);
            assert!(d.iter().all(|d| d.rule != "no-raw-metric"), "{src}: {d:?}");
        }
        // A pragma on the line silences it (engine-level, but the raw
        // finding still points at the right rule name for the pragma).
        let d = check(
            "crates/obs/src/replay.rs",
            "fn f(m: &mut Metrics) { m.crashes += 1; }",
        );
        assert!(d
            .iter()
            .any(|d| d.message.contains("bshm-allow(no-raw-metric)")));
    }

    #[test]
    fn no_untyped_reject_rule() {
        // String/char reasons are flagged wherever the probes live…
        for src in [
            "fn f(l: &mut L) { l.rejected(m, \"capacity\"); }",
            "fn f(c: &mut C) { c.reject(\"busy\"); }",
            "fn f(l: &mut L) { l.noted('a'); }",
        ] {
            for path in [
                "crates/core/src/ops.rs",
                "crates/chart/src/strips.rs",
                "crates/algos/src/dbp/offline_fit.rs",
            ] {
                let d = check(path, src);
                assert!(
                    d.iter().any(|d| d.rule == "no-untyped-reject"),
                    "{path} {src}: {d:?}"
                );
            }
        }
        // …typed enum variants and variables are clean, as are unrelated
        // idents and non-library crates.
        for src in [
            "fn f(l: &mut L) { l.rejected(m, RejectReason::Capacity); }",
            "fn f(c: &mut C) { c.reject(reason); }",
            "fn f(l: &mut L) { l.noted(RejectReason::Admission); }",
            "fn f() { log::rejected; }",
            "fn f(v: &V) { v.rejected_count(\"x\"); }",
        ] {
            let d = check("crates/algos/src/dec/online.rs", src);
            assert!(
                d.iter().all(|d| d.rule != "no-untyped-reject"),
                "{src}: {d:?}"
            );
        }
        assert!(check(
            "crates/cli/src/commands.rs",
            "fn f(c: &mut C) { c.reject(\"busy\"); }"
        )
        .is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f(c: &mut C) { c.reject(\"busy\"); } }";
        assert!(check("crates/core/src/ops.rs", test_src).is_empty());
    }

    #[test]
    fn no_unbounded_buffer_rule() {
        // An unbounded ring in obs is flagged even when the file declares
        // a capacity elsewhere.
        let d = check(
            "crates/obs/src/flight.rs",
            "struct R { capacity: usize }\nfn f() -> VecDeque<u64> { VecDeque::new() }",
        );
        assert!(d.iter().any(|d| d.rule == "no-unbounded-buffer"), "{d:?}");
        // Using VecDeque with no capacity identifier anywhere: flagged.
        let d = check(
            "crates/obs/src/seeded.rs",
            "struct R { ring: VecDeque<u64> }\nfn f(r: &mut R) { r.ring.push_back(1); }",
        );
        assert!(d.iter().any(|d| d.rule == "no-unbounded-buffer"), "{d:?}");
        // Bounded construction with a declared capacity: clean.
        let d = check(
            "crates/obs/src/flight.rs",
            "struct R { capacity: usize, ring: VecDeque<u64> }\nfn f(c: usize) -> VecDeque<u64> { VecDeque::with_capacity(c) }",
        );
        assert!(d.iter().all(|d| d.rule != "no-unbounded-buffer"), "{d:?}");
        // Other crates (sim's event queues, cli) are out of scope; so are
        // test regions.
        let src = "fn f() -> VecDeque<u64> { VecDeque::new() }";
        assert!(check("crates/sim/src/driver.rs", src).is_empty());
        assert!(check("crates/cli/src/commands.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f() -> VecDeque<u64> { VecDeque::new() } }";
        assert!(check("crates/obs/src/flight.rs", test_src).is_empty());
        // The finding names the pragma that would silence it.
        let d = check("crates/obs/src/seeded.rs", src);
        assert!(d
            .iter()
            .any(|d| d.message.contains("bshm-allow(no-unbounded-buffer)")));
    }

    #[test]
    fn no_unbounded_channel_rule() {
        // VecDeque::new() in serve is flagged even with a capacity named
        // elsewhere in the file.
        let d = check(
            "crates/serve/src/queue.rs",
            "struct Q { capacity: usize }\nfn f() -> VecDeque<u64> { VecDeque::new() }",
        );
        assert!(d.iter().any(|d| d.rule == "no-unbounded-channel"), "{d:?}");
        // An unbounded std channel: flagged.
        let d = check(
            "crates/serve/src/transport.rs",
            "fn f() { let (tx, rx) = mpsc::channel(); }",
        );
        assert!(d.iter().any(|d| d.rule == "no-unbounded-channel"), "{d:?}");
        // VecDeque with no bound identifier anywhere: flagged.
        let d = check(
            "crates/serve/src/service.rs",
            "struct Q { items: VecDeque<u64> }\nfn f(q: &mut Q) { q.items.push_back(1); }",
        );
        assert!(d.iter().any(|d| d.rule == "no-unbounded-channel"), "{d:?}");
        // Bounded construction and the bounded channel form: clean.
        let d = check(
            "crates/serve/src/queue.rs",
            "struct Q { capacity: usize, items: VecDeque<u64> }\n\
             fn f(c: usize) -> VecDeque<u64> { VecDeque::with_capacity(c) }\n\
             fn g(c: usize) { let (tx, rx) = mpsc::sync_channel(c); }",
        );
        assert!(d.iter().all(|d| d.rule != "no-unbounded-channel"), "{d:?}");
        // Other crates and test regions stay out of scope.
        let src = "fn f() -> VecDeque<u64> { VecDeque::new() }";
        assert!(check("crates/sim/src/driver.rs", src).is_empty());
        assert!(check("crates/cli/src/commands.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f() -> VecDeque<u64> { VecDeque::new() } }";
        assert!(check("crates/serve/src/queue.rs", test_src).is_empty());
        // The finding names the pragma that would silence it.
        let d = check("crates/serve/src/queue.rs", src);
        assert!(d
            .iter()
            .any(|d| d.message.contains("bshm-allow(no-unbounded-channel)")));
    }

    #[test]
    fn unordered_iter_rule() {
        // Annotated lets, params, fields, and HashMap::new() bindings all
        // register the name; iteration methods and for-loops are flagged.
        for src in [
            "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for v in m.values() { g(v); } }",
            "fn f(m: &HashMap<u32, u32>) { for (k, v) in m.iter() { g(k, v); } }",
            "fn f() { let mut s = HashSet::new(); s.retain(|x| p(x)); }",
            "struct R { index: HashMap<u32, u32> }\nimpl R { fn f(&mut self) { self.index.drain(); } }",
            "fn f(m: HashMap<u32, u32>) { for v in m { g(v); } }",
            "fn f(m: &mut HashMap<u32, u32>) { for v in &mut m { g(v); } }",
        ] {
            let d = check(LIB, src);
            assert!(d.iter().any(|d| d.rule == "unordered-iter"), "{src}: {d:?}");
        }
        // Lookups and inserts are fine; so are BTree collections, Vec
        // fields whose name collides with a hash-typed param elsewhere,
        // non-library crates, and test regions.
        for src in [
            "fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }",
            "fn f(m: &mut HashMap<u32, u32>) { m.insert(1, 2); m.remove(&1); }",
            "fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); for v in m.values() { g(v); } }",
            // `jobs` is hash-typed as a param, but `machine.jobs` is a
            // different (Vec) field — receiver-root matching keeps it clean.
            "fn f(jobs: &HashMap<u32, u32>, machine: &M) { for j in machine.jobs.iter() { g(j); } }",
            "fn f(v: &[u32]) { for x in v.iter() { g(x); } }",
        ] {
            let d = check(LIB, src);
            assert!(d.iter().all(|d| d.rule != "unordered-iter"), "{src}: {d:?}");
        }
        let src = "fn f(m: &HashMap<u32, u32>) { for v in m.values() { g(v); } }";
        assert!(check("crates/cli/src/commands.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests { fn f(m: &HashMap<u32, u32>) { for v in m.values() { g(v); } } }";
        assert!(check(LIB, test_src).is_empty());
    }

    #[test]
    fn shared_mutable_static_rule() {
        let d = check(LIB, "static mut COUNTER: u64 = 0;");
        assert!(d.iter().any(|d| d.rule == "shared-mutable-static"), "{d:?}");
        let d = check(LIB, "thread_local! { static TL: u32 = 0; }");
        assert!(d.iter().any(|d| d.rule == "shared-mutable-static"), "{d:?}");
        // Sync statics are fine; so are non-library crates and tests.
        for src in [
            "static REGISTRY: OnceLock<Mutex<u64>> = OnceLock::new();",
            "static NAMES: [&str; 2] = [\"a\", \"b\"];",
        ] {
            let d = check(LIB, src);
            assert!(
                d.iter().all(|d| d.rule != "shared-mutable-static"),
                "{src}: {d:?}"
            );
        }
        assert!(check("crates/cli/src/x.rs", "static mut C: u64 = 0;").is_empty());
        let test_src = "#[cfg(test)]\nmod tests { static mut C: u64 = 0; }";
        assert!(check(LIB, test_src).is_empty());
    }

    #[test]
    fn must_use_accessor_rule() {
        let path = "crates/core/src/schedule.rs";
        let d = check(path, "impl S { pub fn cost(&self) -> u64 { self.c } }");
        assert!(d.iter().any(|d| d.rule == "must-use-accessor"), "{d:?}");
        // Annotated: clean.
        let d = check(
            path,
            "impl S { #[must_use]\npub fn cost(&self) -> u64 { self.c } }",
        );
        assert!(d.is_empty(), "{d:?}");
        // No return value: clean.
        let d = check(path, "impl S { pub fn clear(&mut self) { self.c = 0; } }");
        assert!(d.is_empty(), "{d:?}");
        // Other core files are out of scope for this rule.
        let d = check(
            "crates/core/src/job.rs",
            "impl S { pub fn cost(&self) -> u64 { self.c } }",
        );
        assert!(d.is_empty(), "{d:?}");
        // Stacked attributes with must_use first still count.
        let d = check(
            path,
            "impl S { #[must_use]\n#[inline]\npub fn cost(&self) -> u64 { self.c } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
