//! Diagnostics, severities, and the `bshm-allow` pragma machinery.

use crate::lexer::{Tok, TokKind};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is. `Error`s gate CI; `Warning`s are advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Advisory: reported, does not fail the run.
    Warning,
    /// Gating: any error makes the analyzer exit non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: rule, where, what.
#[derive(Clone, Debug, Serialize)]
pub struct Diagnostic {
    /// Rule slug (`no-panic`, `lossy-cast`, `drift/trace-schema`, …).
    pub rule: String,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-file/cross-file findings).
    pub line: u32,
    /// Human explanation with the offending snippet.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic.
    #[must_use]
    pub fn error(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }

    /// Builds a warning-severity diagnostic.
    #[must_use]
    pub fn warning(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(rule, file, line, message)
        }
    }

    /// `file:line: severity[rule] message` (line elided when 0).
    #[must_use]
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!(
                "{}: {}[{}] {}",
                self.file, self.severity, self.rule, self.message
            )
        } else {
            format!(
                "{}:{}: {}[{}] {}",
                self.file, self.line, self.severity, self.rule, self.message
            )
        }
    }
}

/// A parsed `// bshm-allow(rule): reason` pragma.
///
/// A pragma suppresses diagnostics of `rule` on its own line, and — when
/// the comment stands alone on its line — on the next source line too, so
/// both trailing and preceding placements work:
///
/// ```text
/// x.unwrap(); // bshm-allow(no-panic): length checked above
/// // bshm-allow(no-panic): length checked above
/// x.unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Pragma {
    /// The rule slug being allowed.
    pub rule: String,
    /// The justification after the colon (must be non-empty).
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Lines the pragma covers (the comment line, plus the following line
    /// for standalone comments).
    pub covers: Vec<u32>,
}

/// Extracts `bshm-allow` pragmas from a token stream.
///
/// Malformed pragmas (missing rule parens or empty reason) are reported as
/// `pragma-syntax` errors rather than silently ignored — a pragma that
/// does not parse must not look like it is suppressing anything.
#[must_use]
pub fn collect_pragmas(toks: &[Tok], file: &str) -> (Vec<Pragma>, Vec<Diagnostic>) {
    let mut pragmas = Vec::new();
    let mut diags = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() || !t.text.contains("bshm-allow") {
            continue;
        }
        // Only plain comments carry pragmas: doc comments (`///`, `//!`,
        // `/**`, `/*!`) merely *talk about* them, as this file does.
        let doc = ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| t.text.starts_with(p));
        if doc {
            continue;
        }
        let Some(rest) = t.text.split("bshm-allow").nth(1) else {
            continue;
        };
        let parsed = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .and_then(|(rule, after)| {
                let reason = after.strip_prefix(':')?.trim();
                (!rule.trim().is_empty() && !reason.is_empty())
                    .then(|| (rule.trim().to_string(), reason.to_string()))
            });
        let Some((rule, reason)) = parsed else {
            diags.push(Diagnostic::error(
                "pragma-syntax",
                file,
                t.line,
                "malformed pragma: expected `bshm-allow(rule): reason` with a non-empty reason",
            ));
            continue;
        };
        // Standalone comment (no code token earlier on its line) also
        // covers the next token's line.
        let standalone = !toks[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.is_comment());
        let mut covers = vec![t.line];
        if standalone {
            if let Some(next) = toks[i + 1..].iter().find(|n| !n.is_comment()) {
                covers.push(next.line);
            }
        }
        pragmas.push(Pragma {
            rule,
            reason,
            line: t.line,
            covers,
        });
    }
    (pragmas, diags)
}

/// Whether `name` names something a pragma can suppress: a registered
/// rule, a drift auditor slug, or the blanket `all`.
#[must_use]
pub fn known_rule(name: &str) -> bool {
    name == "all"
        || crate::rules::RULES.iter().any(|r| r.name == name)
        || crate::drift::DRIFT_AUDITORS.contains(&name)
}

/// Applies pragmas to raw findings: covered findings are dropped, pragmas
/// that cover nothing are reported as `pragma-unused` warnings so stale
/// suppressions do not accumulate, and a pragma naming a rule the registry
/// has never heard of gets `pragma-unknown-rule` instead (a typo'd slug
/// must not read as a merely-stale suppression).
#[must_use]
pub fn apply_pragmas(findings: Vec<Diagnostic>, pragmas: &[Pragma], file: &str) -> Vec<Diagnostic> {
    let (out, _) = apply_pragmas_tracked(findings, pragmas, file);
    out
}

/// Like [`apply_pragmas`], but also returns the findings each pragma
/// suppressed, paired with the pragma's reason — the taint report lists
/// these so every silenced source→sink path stays visible in the artifact.
#[must_use]
pub fn apply_pragmas_tracked(
    findings: Vec<Diagnostic>,
    pragmas: &[Pragma],
    file: &str,
) -> (Vec<Diagnostic>, Vec<(Diagnostic, String)>) {
    let mut used = vec![false; pragmas.len()];
    let mut suppressed = Vec::new();
    let mut out: Vec<Diagnostic> = findings
        .into_iter()
        .filter(|d| {
            let hit = pragmas
                .iter()
                .enumerate()
                .find(|(_, p)| (p.rule == d.rule || p.rule == "all") && p.covers.contains(&d.line));
            match hit {
                Some((i, p)) => {
                    used[i] = true;
                    suppressed.push((d.clone(), p.reason.clone()));
                    false
                }
                None => true,
            }
        })
        .collect();
    for (p, used) in pragmas.iter().zip(used) {
        if !known_rule(&p.rule) {
            out.push(Diagnostic::warning(
                "pragma-unknown-rule",
                file,
                p.line,
                format!(
                    "bshm-allow({}) names a rule the registry does not know; run `--list-rules` for valid slugs",
                    p.rule
                ),
            ));
        } else if !used {
            out.push(Diagnostic::warning(
                "pragma-unused",
                file,
                p.line,
                format!(
                    "bshm-allow({}) suppresses nothing on the lines it covers",
                    p.rule
                ),
            ));
        }
    }
    (out, suppressed)
}

/// The full analysis result, serializable as the CI artifact.
#[derive(Debug, Default, Serialize)]
pub struct Report {
    /// Every finding that survived pragma filtering, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned by the lint rules.
    pub files_scanned: usize,
    /// Count of error-severity findings.
    pub errors: usize,
    /// Count of warning-severity findings.
    pub warnings: usize,
}

impl Report {
    /// Builds a report from findings, computing the counts and ordering.
    #[must_use]
    pub fn new(mut diagnostics: Vec<Diagnostic>, files_scanned: usize) -> Self {
        diagnostics.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        let errors = diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = diagnostics.len() - errors;
        Report {
            diagnostics,
            files_scanned,
            errors,
            warnings,
        }
    }

    /// Human-readable rendering: findings then a per-rule summary line.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &self.diagnostics {
            *by_rule.entry(&d.rule).or_default() += 1;
        }
        if !by_rule.is_empty() {
            out.push('\n');
            for (rule, n) in by_rule {
                out.push_str(&format!("  {rule}: {n}\n"));
            }
        }
        out.push_str(&format!(
            "bshm-analyze: {} file(s) scanned, {} error(s), {} warning(s)\n",
            self.files_scanned, self.errors, self.warnings
        ));
        out
    }

    /// JSON rendering (the CI artifact format).
    ///
    /// # Errors
    /// Propagates serializer failure (should not happen for this type).
    pub fn render_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("serializing report: {e}"))
    }
}

/// Strips tokens whose line is covered by neither code nor rules — helper
/// for rules that want comment-free streams.
#[must_use]
pub fn code_only(toks: &[Tok]) -> Vec<Tok> {
    toks.iter().filter(|t| !t.is_comment()).cloned().collect()
}

/// Whether `kind` is a literal the float-comparison rule treats as float
/// evidence.
#[must_use]
pub fn is_float_literal(kind: &TokKind) -> bool {
    *kind == TokKind::Float
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn trailing_pragma_covers_own_line() {
        let toks = tokenize("x.unwrap(); // bshm-allow(no-panic): checked above\n");
        let (pragmas, diags) = collect_pragmas(&toks, "f.rs");
        assert!(diags.is_empty());
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].rule, "no-panic");
        assert_eq!(pragmas[0].covers, vec![1]);
    }

    #[test]
    fn standalone_pragma_covers_next_line() {
        let toks = tokenize("// bshm-allow(lossy-cast): width asserted\nlet x = y as u32;\n");
        let (pragmas, _) = collect_pragmas(&toks, "f.rs");
        assert_eq!(pragmas[0].covers, vec![1, 2]);
    }

    #[test]
    fn malformed_pragma_is_reported() {
        for bad in [
            "// bshm-allow(no-panic)\n",     // no reason
            "// bshm-allow(no-panic):\n",    // empty reason
            "// bshm-allow no-panic: why\n", // no parens
        ] {
            let toks = tokenize(bad);
            let (pragmas, diags) = collect_pragmas(&toks, "f.rs");
            assert!(pragmas.is_empty(), "{bad}");
            assert_eq!(diags.len(), 1, "{bad}");
            assert_eq!(diags[0].rule, "pragma-syntax", "{bad}");
        }
    }

    #[test]
    fn doc_comments_do_not_carry_pragmas() {
        // Doc text *describing* the pragma syntax (as this module's own
        // docs do) must neither suppress anything nor count as malformed.
        for doc in [
            "/// Write `// bshm-allow` to suppress\nfn f() {}\n",
            "//! bshm-allow(no-panic): looks real but is documentation\nfn f() {}\n",
            "/** bshm-allow stuff */\nfn f() {}\n",
        ] {
            let toks = tokenize(doc);
            let (pragmas, diags) = collect_pragmas(&toks, "f.rs");
            assert!(pragmas.is_empty(), "{doc}");
            assert!(diags.is_empty(), "{doc}");
        }
    }

    #[test]
    fn apply_drops_covered_and_flags_unused() {
        let toks = tokenize(
            "x.unwrap(); // bshm-allow(no-panic): fine\n// bshm-allow(no-panic): stale\nlet a = 1;\n",
        );
        let (pragmas, _) = collect_pragmas(&toks, "f.rs");
        let findings = vec![Diagnostic::error("no-panic", "f.rs", 1, "unwrap")];
        let out = apply_pragmas(findings, &pragmas, "f.rs");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "pragma-unused");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn unknown_rule_pragma_is_flagged_as_such() {
        let toks = tokenize("let x = 1; // bshm-allow(no-pnaic): typo'd slug\n");
        let (pragmas, diags) = collect_pragmas(&toks, "f.rs");
        assert!(diags.is_empty());
        let out = apply_pragmas(Vec::new(), &pragmas, "f.rs");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "pragma-unknown-rule");
        // Known-but-idle pragmas still read as stale, not unknown.
        let toks = tokenize("let x = 1; // bshm-allow(no-panic): nothing here\n");
        let (pragmas, _) = collect_pragmas(&toks, "f.rs");
        let out = apply_pragmas(Vec::new(), &pragmas, "f.rs");
        assert_eq!(out[0].rule, "pragma-unused");
        // Drift slugs and `all` are known names.
        assert!(known_rule("all"));
        assert!(known_rule("drift/rules-manifest"));
        assert!(known_rule("taint-path"));
        assert!(!known_rule("no-pnaic"));
    }

    #[test]
    fn tracked_application_returns_suppressions_with_reasons() {
        let toks = tokenize("x.unwrap(); // bshm-allow(no-panic): len checked\n");
        let (pragmas, _) = collect_pragmas(&toks, "f.rs");
        let findings = vec![Diagnostic::error("no-panic", "f.rs", 1, "unwrap")];
        let (out, suppressed) = apply_pragmas_tracked(findings, &pragmas, "f.rs");
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].0.rule, "no-panic");
        assert_eq!(suppressed[0].1, "len checked");
    }

    #[test]
    fn report_counts_and_renders() {
        let r = Report::new(
            vec![
                Diagnostic::error("no-panic", "b.rs", 3, "x"),
                Diagnostic::warning("pragma-unused", "a.rs", 1, "y"),
            ],
            2,
        );
        assert_eq!(r.errors, 1);
        assert_eq!(r.warnings, 1);
        // Sorted by file.
        assert_eq!(r.diagnostics[0].file, "a.rs");
        let text = r.render_human();
        assert!(text.contains("b.rs:3: error[no-panic]"));
        assert!(text.contains("2 file(s) scanned, 1 error(s), 1 warning(s)"));
        let json = r.render_json().unwrap();
        assert!(json.contains("\"rule\": \"no-panic\""));
    }
}
