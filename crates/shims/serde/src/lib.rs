//! Minimal in-tree stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of serde the workspace actually uses: `Serialize` /
//! `Deserialize` traits (value-model based, not visitor based) plus
//! derive macros for plain structs, tuple structs and enums with unit /
//! newtype / struct variants — the only shapes the workspace derives.
//!
//! The JSON data model lives here as [`Value`]; `serde_json` (also
//! shimmed) provides the text encoding. Representation conventions match
//! real serde's JSON output: structs are objects, newtype structs are
//! transparent, unit enum variants are strings, and data-carrying enum
//! variants are single-key objects (externally tagged).

#![warn(missing_docs)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: an ordered JSON-like value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (kept exact up to `u64::MAX`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by key.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: extracts and deserializes a named field,
/// reporting the owning type on error.
pub fn from_field<T: Deserialize>(v: &Value, ty: &str, field: &str) -> Result<T, Error> {
    let fv = v
        .field(field)
        .ok_or_else(|| Error(format!("{ty}: missing field `{field}`")))?;
    T::from_value(fv).map_err(|e| Error(format!("{ty}.{field}: {}", e.0)))
}

/// Derive-macro helper: views `v` as an externally tagged enum value
/// (a single-key object), returning the variant name and payload.
#[must_use]
pub fn as_enum(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(pairs) if pairs.len() == 1 => Some((pairs[0].0.as_str(), &pairs[0].1)),
        _ => None,
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| Error(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))?,
                    Value::Int(n) => *n,
                    other => {
                        return Err(Error(format!("expected integer, got {other:?}")))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_sint!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| Error(format!("{n} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        // Integers are accepted where floats are expected.
        assert_eq!(f64::from_value(&Value::UInt(4)), Ok(4.0));
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()), Ok(xs));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::from_value(&Value::UInt(1)), Ok(Some(1)));
    }

    #[test]
    fn range_errors_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(from_field::<u64>(&v, "T", "a"), Ok(1));
        assert!(from_field::<u64>(&v, "T", "b")
            .unwrap_err()
            .0
            .contains("missing"));
    }
}
