//! Minimal in-tree stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` parameters, range and tuple
//! strategies, [`prop::collection::vec`], [`Strategy::prop_map`],
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the case number and the test's RNG is seeded deterministically
//! from the test name, so failures reproduce exactly on re-run.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        new_rng, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Per-block configuration (only the case count is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG used to drive sampling.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named test (FNV-1a over the name).
#[must_use]
pub fn new_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one random value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length specifications accepted by [`vec`].
        pub trait IntoLenRange {
            /// Samples a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoLenRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl IntoLenRange for RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl IntoLenRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        /// A strategy for `Vec`s whose length is drawn from `len` and
        /// whose elements are drawn from `element`.
        pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Defines random-sampling property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn holds(x in 0u64..100, ys in prop::collection::vec(1u64..5, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let case_runner = |rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                        $body
                    };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| case_runner(&mut rng)),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: {} failed at case {case}/{} (no shrinking; \
                             seed is derived from the test name, so this reproduces)",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Like `assert!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like `assert_eq!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = new_rng("bounds");
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&x));
            let (a, b) = Strategy::sample(&(1u64..=4, 0usize..3), &mut rng);
            assert!((1..=4).contains(&a) && b < 3);
            let v = Strategy::sample(&prop::collection::vec(0u64..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = new_rng("map");
        let doubled = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = Strategy::sample(&doubled, &mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_assumes(x in 0u64..100, pair in (0u64..5, 1u64..=2)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(pair.1 >= 1, true);
        }
    }
}
