//! Minimal in-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], and a deterministic [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`]. The generator is xoshiro256++ with
//! SplitMix64 state expansion — deterministic across platforms, which is
//! all the workspace's reproducible-workload generators need. Stream
//! values differ from real `rand`'s `StdRng` (ChaCha12), so regenerated
//! instances are *internally* reproducible but not bit-identical to ones
//! produced with the registry crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s plus the derived sampling methods.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the range (integer or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        gen_f64(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn gen_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply.
fn gen_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with a uniform distribution over a bounded range.
///
/// Implemented generically (rather than per range type) so untyped
/// integer literals in `gen_range(2..=4)` unify with the surrounding
/// expression's type, exactly as with the registry `rand` crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)` or, when `inclusive`, `[lo, hi]`.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                // Wrapping subtraction then zero-extension gives the span
                // even for signed types whose difference overflows.
                let span = hi.wrapping_sub(lo) as $u as u64;
                let draw = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    gen_below(rng, span + 1)
                } else {
                    gen_below(rng, span)
                };
                lo.wrapping_add(draw as $u as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i32 => u32, i64 => u64
);

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let x = lo + gen_f64(rng) * (hi - lo);
        // Guard the open upper bound against rounding.
        if x >= hi && lo < hi {
            lo
        } else {
            x
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u64..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(4usize..=4);
            assert_eq!(d, 4);
        }
    }

    #[test]
    fn full_inclusive_range_covers_ends() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match rng.gen_range(0u64..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 8];
        for _ in 0..80_000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }
}
