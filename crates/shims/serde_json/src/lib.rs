//! Minimal in-tree stand-in for `serde_json`: compact and pretty JSON
//! encoding plus a recursive-descent parser, over the `serde` shim's
//! [`Value`] model. Supports exactly the API surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`] and
//! [`from_value`].

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fmt::Write as _;

/// JSON encoding/decoding error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent, like real
/// `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Converts a serializable value into the shim's [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a value from the shim's [`Value`] model.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    from_value(&v)
}

// ------------------------------------------------------------- encoding

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot encode non-finite float {x}")));
            }
            // Keep floats recognizably floats on re-parse.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d)
            })?;
        }
        Value::Object(pairs) => {
            write_seq(out, pairs.len(), indent, depth, '{', '}', |out, i, d| {
                write_string(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &pairs[i].1, indent, d)
            })?;
        }
    }
    Ok(())
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        item(out, i, depth + 1)?;
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // shim's encoder; reject them on input.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), xs);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![vec![1u64], vec![2]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  ["), "{s}");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);
    }

    #[test]
    fn object_parsing_and_errors() {
        let v: Value = {
            let mut p = Parser {
                bytes: br#"{"a": 1, "b": [true, null]}"#,
                pos: 0,
            };
            p.parse_value(0).unwrap()
        };
        assert_eq!(v.field("a"), Some(&Value::UInt(1)));
        assert!(from_str::<u64>("12 troll").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ nl\n tab\t unicode\u{1}".to_string();
        let enc = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&enc).unwrap(), s);
    }
}
