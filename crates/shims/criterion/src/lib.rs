//! Minimal in-tree stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, [`BenchmarkId`], [`Throughput`], `bench_with_input`,
//! `bench_function`, `Bencher::iter` — over a simple wall-clock harness:
//! a warm-up to calibrate the per-iteration cost, then `sample_size`
//! timed samples, reporting median / min / max ns per iteration and
//! derived throughput. No statistics beyond that and no HTML reports,
//! but good enough to compare hot paths before and after a change.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// A benchmark id: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.name, 20, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a closure without input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (reports are emitted eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration: start at 1 iteration and grow until a sample takes
    // long enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (SAMPLE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }
    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let thru = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 * 1e3 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    eprintln!(
        "  {label}: median {} [min {}, max {}] x{iters}{thru}",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Re-export matching criterion's `black_box` (std's since 1.66).
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", 3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 5).name, "a/5");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
