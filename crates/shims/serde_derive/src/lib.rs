//! Derive macros for the in-tree `serde` shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is
//! parsed directly from the [`proc_macro::TokenStream`] and the impl is
//! emitted as source text. Supported shapes — the only ones the workspace
//! derives — are:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums whose variants are unit, newtype, or struct-like (encoded
//!   externally tagged, exactly like real serde's JSON default).
//!
//! Generics, `where` clauses and `#[serde(...)]` attributes are not
//! supported and panic at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, Mode::Serialize)
}

/// Derives the shim's `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i, "expected `struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "expected type name");
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        _ if kind == "struct" => panic!("serde shim derive: unit struct `{name}` unsupported"),
        _ => panic!("serde shim derive: malformed item `{name}`"),
    };
    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::NamedStruct(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::TupleStruct(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(body.stream())),
        _ => panic!("serde shim derive: unsupported item shape for `{name}`"),
    };
    Item { name, shape }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *i += 2;
        } else {
            break;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, msg: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: {msg}, got {other:?}"),
    }
}

/// Skips a type (or any expression) up to a top-level `,`, tracking angle
/// bracket depth so `Vec<(A, B)>`-style commas don't terminate early.
/// Leaves `i` on the comma (or at the end).
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "expected field name");
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // consume the comma (or step past the end)
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_until_comma(&tokens, &mut i);
        count += 1;
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "expected variant name");
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip any explicit discriminant, then the separating comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------ generation

fn render(item: &Item, mode: Mode) -> TokenStream {
    let code = match mode {
        Mode::Serialize => render_serialize(item),
        Mode::Deserialize => render_deserialize(item),
    };
    code.parse()
        .expect("serde shim derive: generated code parses")
}

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let parts: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", parts.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Named(fields) => {
            let binders = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value({f})")))
                .collect();
            let inner = format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            );
            let tagged = obj_entry(vname, &inner);
            format!(
                "{name}::{vname} {{ {binders} }} => \
                 ::serde::Value::Object(::std::vec![{tagged}]),"
            )
        }
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(x0)".to_string()
            } else {
                let parts: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", parts.join(", "))
            };
            let tagged = obj_entry(vname, &inner);
            format!(
                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![{tagged}]),",
                binders.join(", ")
            )
        }
    }
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(v, \"{name}\", \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok({name}({inits})),\n\
                     other => ::std::result::Result::Err(::serde::Error(\
                         ::std::format!(\"{name}: expected {n}-element array, got {{other:?}}\"))),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => render_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn render_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    for v in variants {
        if matches!(v.kind, VariantKind::Unit) {
            let vname = &v.name;
            unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            ));
        }
    }
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {}
            VariantKind::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::from_field(inner, \"{name}::{vname}\", \"{f}\")?")
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "::std::option::Option::Some((\"{vname}\", inner)) => \
                     ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                    inits.join(", ")
                ));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "::std::option::Option::Some((\"{vname}\", inner)) => \
                     ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "::std::option::Option::Some((\"{vname}\", inner)) => match inner {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vname}({inits})),\n\
                         other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                             \"{name}::{vname}: expected {n}-element array, got {{other:?}}\"))),\n\
                     }},\n",
                    inits = inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             _ => match ::serde::as_enum(v) {{\n\
                 {tagged_arms}\
                 ::std::option::Option::Some((other, _)) => \
                     ::std::result::Result::Err(::serde::Error(::std::format!(\
                         \"unknown variant `{{other}}` for {name}\"))),\n\
                 ::std::option::Option::None => \
                     ::std::result::Result::Err(::serde::Error(::std::format!(\
                         \"{name}: expected enum value, got {{v:?}}\"))),\n\
             }},\n\
         }}"
    )
}
